package torture

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"ccnvm/internal/engine"
	"ccnvm/internal/recovery"
	"ccnvm/internal/trace"
)

// crashImage drives a cell's trace to its crash point on a fresh engine
// (fault model armed when the cell has one) and returns the crash image.
func crashImage(t *testing.T, c Cell) *engine.CrashImage {
	t.Helper()
	c = c.normalized()
	ops, err := GenOps(c.Workload, c.Seed, c.Ops)
	if err != nil {
		t.Fatal(err)
	}
	eng, _, err := BuildEngine(c.Design, engine.Params{UpdateLimit: c.N, QueueEntries: c.M}, c.faultModel())
	if err != nil {
		t.Fatal(err)
	}
	now := int64(0)
	for i, op := range ops[:c.CrashAt] {
		now += int64(op.Gap)
		switch op.Kind {
		case trace.Store:
			now = eng.WriteBack(now, op.Addr, pattern(op.Addr, byte(i))) + 8
		case trace.Load:
			_, done := eng.ReadBlock(now, op.Addr)
			now = done + 8
		}
	}
	return eng.Crash()
}

// diffImages returns a description of the first divergence between two
// crash images (store content, stuck set, TCB registers), or "".
func diffImages(got, want *engine.CrashImage) string {
	if !got.Image.Store.Equal(want.Image.Store) {
		for _, a := range want.Image.Store.Addrs() {
			wl, _ := want.Image.Store.Read(a)
			if gl, _ := got.Image.Store.Read(a); gl != wl {
				return fmt.Sprintf("store content differs at %#x", uint64(a))
			}
		}
		for _, a := range got.Image.Store.Addrs() {
			gl, _ := got.Image.Store.Read(a)
			if wl, _ := want.Image.Store.Read(a); gl != wl {
				return fmt.Sprintf("store content differs at %#x", uint64(a))
			}
		}
	}
	if len(got.Image.Stuck) != len(want.Image.Stuck) {
		return fmt.Sprintf("stuck sets differ: %d vs %d lines", len(got.Image.Stuck), len(want.Image.Stuck))
	}
	for a := range want.Image.Stuck {
		if !got.Image.Stuck[a] {
			return fmt.Sprintf("line %#x stuck in one image only", uint64(a))
		}
	}
	if got.TCB.RootNew != want.TCB.RootNew || got.TCB.RootOld != want.TCB.RootOld || got.TCB.Nwb != want.TCB.Nwb {
		return fmt.Sprintf("TCB registers differ (Nwb %d vs %d)", got.TCB.Nwb, want.TCB.Nwb)
	}
	return ""
}

// TestApplyIdempotentAllDesigns is the re-entrancy base case: recovering
// and applying an already-recovered image must change nothing, for every
// design, on the idealized device and under an active fault model.
func TestApplyIdempotentAllDesigns(t *testing.T) {
	for _, d := range DesignNames() {
		for _, faulty := range []bool{false, true} {
			name := d + "/faultless"
			cell := Cell{Design: d, Workload: "mixed", Seed: 5, Ops: 140, CrashAt: 110, N: 8}
			if faulty {
				name = d + "/faulty"
				cell.FaultSeed, cell.Torn, cell.ADRBudget = 11, true, 4
			}
			t.Run(name, func(t *testing.T) {
				img := crashImage(t, cell)
				rep := recovery.Recover(img)
				rec1 := recovery.Apply(img, rep)
				once := img.Clone()

				rep2 := recovery.Recover(img)
				rec2 := recovery.Apply(img, rep2)
				if d := diffImages(img, once); d != "" {
					t.Fatalf("second Apply changed the image: %s", d)
				}
				if rec1.TCB.RootNew != rec2.TCB.RootNew || rec1.TCB.RootOld != rec2.TCB.RootOld || rec1.TCB.Nwb != rec2.TCB.Nwb {
					t.Fatalf("second Apply committed different registers: %+v vs %+v", rec2.TCB, rec1.TCB)
				}
				if recovery.JournalActive(img) {
					t.Fatal("journal left active after a completed Apply")
				}
			})
		}
	}
}

// TestRebootCrashEveryWrite is the exhaustive re-entrancy property: for
// every design, crash the Apply pass at its k-th persisted recovery
// write for every k, re-enter recovery until it converges, and require
// the final image bit-identical to the single-shot recovery.
func TestRebootCrashEveryWrite(t *testing.T) {
	for _, d := range DesignNames() {
		d := d
		t.Run(d, func(t *testing.T) {
			t.Parallel()
			cell := Cell{Design: d, Workload: "hot", Seed: 2, Ops: 80, CrashAt: 64, N: 4}
			img := crashImage(t, cell)
			rep := recovery.Recover(img)
			if !rep.Clean() {
				t.Skipf("%s crash image not clean (Clean=%v); reboot loop is gated on clean first recovery", d, rep.Clean())
			}

			golden := img.Clone()
			grep := recovery.Recover(golden)
			grec := recovery.Apply(golden, grep)
			// Probe the total write count with an unstruck pass.
			probe := img.Clone()
			pitr := &recovery.Interrupt{}
			if _, ok := recovery.ApplyInterrupted(probe, recovery.Recover(probe), pitr); !ok {
				t.Fatal("unstruck probe pass failed to commit")
			}
			w := pitr.Writes
			if w < 2 {
				// Even a no-op recovery persists jBegin and jCommit.
				t.Fatalf("probe pass issued only %d writes; journal protocol broken", w)
			}

			for k := 1; k <= w; k++ {
				work := img.Clone()
				wrep := recovery.Recover(work)
				done := false
				for pass := 1; pass <= w+2 && !done; pass++ {
					itr := &recovery.Interrupt{After: k, Seq: uint64(pass)}
					rec, ok := recovery.ApplyInterrupted(work, wrep, itr)
					if ok {
						done = true
						if diff := diffImages(work, golden); diff != "" {
							t.Fatalf("k=%d: converged image diverges: %s", k, diff)
						}
						if rec.TCB.RootNew != grec.TCB.RootNew {
							t.Fatalf("k=%d: committed root diverges from single-shot recovery", k)
						}
						break
					}
					wrep = recovery.Recover(work)
					// k=1 kills every pass's first write; no pass can make
					// progress, so go straight to the final clean pass.
					if k == 1 {
						break
					}
				}
				if !done {
					itr := &recovery.Interrupt{Seq: uint64(w + 3)}
					if _, ok := recovery.ApplyInterrupted(work, wrep, itr); !ok {
						t.Fatalf("k=%d: final uninterrupted pass failed to commit", k)
					}
					if diff := diffImages(work, golden); diff != "" {
						t.Fatalf("k=%d: image after final pass diverges: %s", k, diff)
					}
				}
				if recovery.JournalActive(work) {
					t.Fatalf("k=%d: journal still active after convergence", k)
				}
			}
		})
	}
}

// TestRebootMatrixShort pins the reboot axis into tier-1: every design
// crosses the default strike strides, faultless and faulty, and all
// reboot oracles must hold.
func TestRebootMatrixShort(t *testing.T) {
	opts := MatrixOpts{
		Workloads: []string{"hot"},
		Attacks:   []string{"none"},
		Seeds:     2,
		Ops:       160,
		CrashPts:  1,
		Reboots:   4,
	}
	var cells []Cell
	for _, c := range EnumerateCells(opts) {
		if c.Reboots > 0 {
			cells = append(cells, c)
		}
	}
	if want := len(DesignNames()) * 3 * 2; len(cells) != want {
		t.Fatalf("reboot matrix has %d cells, want %d", len(cells), want)
	}
	sum := RunMatrix(context.Background(), DefaultRunner(), cells, 0, nil)
	for _, f := range sum.Failures {
		t.Errorf("%s\n  repro: %s", f.Error(), f.Repro)
	}
	t.Logf("%s", sum.Describe())
}

// TestBrokenRebootCaught proves the convergence oracle bites: a recovery
// that accepts a half-applied image as converged must be caught on
// faultless reboot cells (where no other oracle can fire first), the
// failure must shrink, and the repro must replay — broken runner failing
// the same oracle, real recovery passing.
func TestBrokenRebootCaught(t *testing.T) {
	r, err := BrokenRunner("accept-divergent")
	if err != nil {
		t.Fatal(err)
	}
	opts := MatrixOpts{
		Designs:   []string{"ccnvm", "arsenal"},
		Workloads: []string{"hot"},
		Attacks:   []string{"none"},
		Seeds:     2,
		Ops:       160,
		CrashPts:  1,
		Reboots:   3,
	}
	var cells []Cell
	for _, c := range EnumerateCells(opts) {
		if c.Reboots > 0 && !c.Faulty() {
			cells = append(cells, c)
		}
	}
	sum := RunMatrix(context.Background(), r, cells, 0, nil)
	if !sum.Failed() {
		t.Fatalf("accept-divergent slipped past every oracle over %d cells", sum.Cells)
	}
	var f *MatrixFailure
	for i := range sum.Failures {
		if sum.Failures[i].Oracle == "reboot-convergence" {
			f = &sum.Failures[i]
			break
		}
	}
	if f == nil {
		t.Fatalf("no failure on the convergence oracle; got %+v", sum.Failures)
	}
	spec := strings.TrimSuffix(strings.TrimPrefix(f.Repro, "go run ./cmd/ccnvm-torture -repro '"), "'")
	cell, err := ParseCell(spec)
	if err != nil {
		t.Fatalf("repro spec does not parse: %v", err)
	}
	again := r.RunCell(cell)
	if again == nil {
		t.Fatalf("minimized repro %s no longer fails", f.Repro)
	}
	if again.Oracle != f.Oracle {
		t.Fatalf("repro fails a different oracle: %s vs %s", again.Oracle, f.Oracle)
	}
	if g := DefaultRunner().RunCell(cell); g != nil {
		t.Fatalf("minimized cell also fails the real recovery: %v", g)
	}
	t.Logf("accept-divergent caught by %q after %d shrink runs: %s", f.Oracle, f.ShrinkRuns, f.Repro)
}

// FuzzRebootCell explores the reboot-loop dimensions on top of the
// fault dimensions: any (design, workload, seeds, crash point, fault
// axes, strike stride, reboot count) combination must satisfy every
// oracle — in particular, re-entered recovery must converge to the
// single-shot image without manufacturing loss. A separate target
// (rather than new FuzzFaultCell parameters) keeps the existing corpus
// arity valid.
func FuzzRebootCell(f *testing.F) {
	f.Add(uint8(4), uint8(0), int64(1), uint16(160), uint16(110), int64(0), false, uint8(0), uint8(2), uint8(3))
	f.Add(uint8(6), uint8(2), int64(9), uint16(200), uint16(150), int64(7), true, uint8(4), uint8(3), uint8(4))
	f.Add(uint8(1), uint8(1), int64(3), uint16(120), uint16(80), int64(2), false, uint8(2), uint8(5), uint8(2))
	f.Add(uint8(5), uint8(3), int64(21), uint16(240), uint16(200), int64(5), true, uint8(1), uint8(1), uint8(1))
	r := DefaultRunner()
	f.Fuzz(func(t *testing.T, design, workload uint8, seed int64, ops, crash uint16, fseed int64, torn bool, adr, revery, reboots uint8) {
		designs, workloads := DesignNames(), WorkloadNames()
		c := Cell{
			Design:      designs[int(design)%len(designs)],
			Workload:    workloads[int(workload)%len(workloads)],
			Seed:        seed,
			Ops:         1 + int(ops)%400,
			Attack:      "none",
			FaultSeed:   fseed,
			Torn:        torn,
			ADRBudget:   int(adr) % 17,
			RebootEvery: 1 + int(revery)%8,
			Reboots:     1 + int(reboots)%6,
		}
		c.CrashAt = 1 + int(crash)%c.Ops
		if c.RebootEvery == 1 {
			c.Reboots = 1 // striking every first write cannot converge over multiple reboots
		}
		if fail := r.RunCell(c); fail != nil {
			t.Fatalf("%v\nrepro: %s", fail, fail.Cell.Repro())
		}
	})
}

// TestRebootCellValidate pins the reboot-axis vocabulary rules.
func TestRebootCellValidate(t *testing.T) {
	base := Cell{Design: "ccnvm", Workload: "hot", Attack: "none", Ops: 100, CrashAt: 50}
	valid := []Cell{
		{RebootEvery: 2, Reboots: 4},
		{RebootEvery: 1, Reboots: 1}, // a single first-write strike is a valid probe
		{RebootEvery: 100, Reboots: 64},
	}
	for _, v := range valid {
		c := base
		c.RebootEvery, c.Reboots = v.RebootEvery, v.Reboots
		if err := c.Validate(); err != nil {
			t.Errorf("revery=%d,reboots=%d rejected: %v", v.RebootEvery, v.Reboots, err)
		}
	}
	invalid := []Cell{
		{Reboots: 65},                // over budget
		{Reboots: 2},                 // reboots without a stride
		{RebootEvery: 2},             // stride without reboots
		{RebootEvery: 1, Reboots: 2}, // livelock by construction
		{RebootEvery: -1, Reboots: 1},
	}
	for _, v := range invalid {
		c := base
		c.RebootEvery, c.Reboots = v.RebootEvery, v.Reboots
		if err := c.Validate(); err == nil {
			t.Errorf("revery=%d,reboots=%d accepted", v.RebootEvery, v.Reboots)
		}
	}
}

// TestRebootReproRoundTrip extends the spec round trip to the reboot
// fields: String and ParseCell must invert each other.
func TestRebootReproRoundTrip(t *testing.T) {
	orig := Cell{
		Design: "arsenal", Workload: "hammer", Seed: 9, Ops: 200, CrashAt: 133,
		Attack: "none", N: 16, M: 32, FaultSeed: 3, Torn: true, ADRBudget: 2,
		RebootEvery: 3, Reboots: 5,
	}
	back, err := ParseCell(orig.String())
	if err != nil {
		t.Fatalf("ParseCell(%q): %v", orig.String(), err)
	}
	if back != orig.normalized() {
		t.Fatalf("round trip changed the cell: %s -> %s", orig.String(), back.String())
	}
	if !strings.Contains(orig.String(), "revery=3,reboots=5") {
		t.Fatalf("spec does not carry the reboot axis: %s", orig.String())
	}
	if _, err := ParseCell("design=ccnvm,ops=10,crash=5,revery=1,reboots=2"); err == nil {
		t.Fatal("ParseCell accepted a livelocking reboot spec")
	}
}
