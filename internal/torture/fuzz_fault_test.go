package torture

import "testing"

// FuzzFaultCell explores the media-fault dimensions: any (design,
// workload, trace seed, crash point, fault seed, torn, ADR budget, weak
// percentage, stuck count) combination must satisfy every oracle on a
// clean crash — in particular, no torn, dropped or stuck line may ever
// be silently accepted by recovery. A separate target (rather than new
// FuzzCell parameters) keeps the existing corpus arity valid. Under
// plain `go test` only the seed corpus runs; `make fuzz-short` gives it
// a fixed budget, and `go test -fuzz=FuzzFaultCell ./internal/torture/`
// explores further.
func FuzzFaultCell(f *testing.F) {
	f.Add(uint8(4), uint8(0), int64(1), uint16(200), uint16(150), int64(1), true, uint8(4), uint8(0), uint8(0))
	f.Add(uint8(2), uint8(3), int64(9), uint16(300), uint16(222), int64(7), false, uint8(2), uint8(20), uint8(2))
	f.Add(uint8(6), uint8(1), int64(42), uint16(120), uint16(100), int64(3), true, uint8(1), uint8(0), uint8(1))
	f.Add(uint8(0), uint8(2), int64(7), uint16(250), uint16(180), int64(11), true, uint8(8), uint8(10), uint8(0))
	r := DefaultRunner()
	f.Fuzz(func(t *testing.T, design, workload uint8, seed int64, ops, crash uint16, fseed int64, torn bool, adr, weak, stuck uint8) {
		designs, workloads := DesignNames(), WorkloadNames()
		c := Cell{
			Design:    designs[int(design)%len(designs)],
			Workload:  workloads[int(workload)%len(workloads)],
			Seed:      seed,
			Ops:       1 + int(ops)%400,
			Attack:    "none",
			FaultSeed: fseed,
			Torn:      torn,
			ADRBudget: int(adr) % 17,
			WeakPct:   int(weak) % 101,
			Stuck:     int(stuck) % 9,
		}
		c.CrashAt = 1 + int(crash)%c.Ops
		if fail := r.RunCell(c); fail != nil {
			t.Fatalf("%v\nrepro: %s", fail, fail.Cell.Repro())
		}
	})
}
