package torture

import (
	"context"
	"flag"
	"strings"
	"testing"
)

var tortureLong = flag.Bool("torture.long", false, "run the extended torture matrix")

// ShortMatrixOpts is the deterministic tier-1 slice of the matrix: every
// design, workload and attack kind appears, budgeted to stay well inside
// the tier-1 time box (and race-clean under -race).
func ShortMatrixOpts() MatrixOpts {
	return MatrixOpts{
		Seeds:    2,
		Ops:      160,
		CrashPts: 2,
	}
}

func TestShortMatrix(t *testing.T) {
	cells := EnumerateCells(ShortMatrixOpts())
	sum := RunMatrix(context.Background(), DefaultRunner(), cells, 0, nil)
	for _, f := range sum.Failures {
		t.Errorf("%s\n  repro: %s", f.Error(), f.Repro)
	}
	t.Logf("%s", sum.Describe())
}

// TestFaultMatrix is the media-fault slice: every design crosses two
// workloads and eight fault seeds cycled through the fault profiles,
// with no attack — pure crash damage. Zero oracle failures means no
// design ever silently accepted a torn, dropped or stuck line.
func TestFaultMatrix(t *testing.T) {
	opts := MatrixOpts{
		Workloads:  []string{"hot", "mixed"},
		Attacks:    []string{"none"},
		Seeds:      2,
		Ops:        200,
		CrashPts:   1,
		FaultSeeds: 8,
	}
	var cells []Cell
	for _, c := range EnumerateCells(opts) {
		if c.Faulty() {
			cells = append(cells, c)
		}
	}
	if want := len(DesignNames()) * 2 * 8; len(cells) != want {
		t.Fatalf("fault matrix has %d cells, want %d", len(cells), want)
	}
	sum := RunMatrix(context.Background(), DefaultRunner(), cells, 0, nil)
	for _, f := range sum.Failures {
		t.Errorf("%s\n  repro: %s", f.Error(), f.Repro)
	}
	t.Logf("%s", sum.Describe())
}

// TestRunMatrixInterrupted exercises the cancellation path: a cancelled
// context must skip the remaining cells and mark the summary partial.
func TestRunMatrixInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cells := EnumerateCells(MatrixOpts{
		Designs: []string{"ccnvm"}, Workloads: []string{"hot"},
		Attacks: []string{"none"}, Seeds: 2, Ops: 120, CrashPts: 2,
	})
	sum := RunMatrix(ctx, DefaultRunner(), cells, 2, nil)
	if !sum.Interrupted {
		t.Fatal("summary not marked interrupted under a cancelled context")
	}
	if sum.Skipped != len(cells) {
		t.Fatalf("cancelled before dispatch, yet only %d of %d cells skipped", sum.Skipped, len(cells))
	}
}

// TestShortMatrixCoversVocabulary guards the budget sampling: the short
// matrix must still exercise every design, workload and attack kind.
func TestShortMatrixCoversVocabulary(t *testing.T) {
	cells := EnumerateCells(ShortMatrixOpts())
	seen := map[string]bool{}
	for _, c := range cells {
		seen["d:"+c.Design] = true
		seen["w:"+c.Workload] = true
		seen["a:"+c.Attack] = true
	}
	for _, d := range DesignNames() {
		if !seen["d:"+d] {
			t.Errorf("short matrix never tortures design %s", d)
		}
	}
	for _, w := range WorkloadNames() {
		if !seen["w:"+w] {
			t.Errorf("short matrix never runs workload %s", w)
		}
	}
	for _, a := range AttackNames() {
		if !seen["a:"+a] {
			t.Errorf("short matrix never injects attack %s", a)
		}
	}
}

func TestReproRoundTrip(t *testing.T) {
	for _, orig := range []Cell{
		{Design: "ccnvm", Workload: "hammer", Seed: 7, Ops: 300, CrashAt: 123, Attack: "data-replay", N: 4, M: 32},
		{Design: "wocc", Workload: "hot", Seed: 2, Ops: 100, CrashAt: 50, Attack: "none", FaultSeed: 3, WeakPct: 10, Stuck: 2, Spares: 4},
	} {
		back, err := ParseCell(orig.String())
		if err != nil {
			t.Fatalf("ParseCell(%q): %v", orig.String(), err)
		}
		if back != orig.normalized() {
			t.Fatalf("round trip changed the cell: %s -> %s", orig.String(), back.String())
		}
	}
	if _, err := ParseCell("design=nosuch"); err == nil {
		t.Fatal("ParseCell accepted an unknown design")
	}
	if _, err := ParseCell("design=ccnvm,ops=10,crash=11"); err == nil {
		t.Fatal("ParseCell accepted a crash point outside the trace")
	}
	if _, err := ParseCell("design=ccnvm,ops=10,crash=5,spares=2"); err == nil {
		t.Fatal("ParseCell accepted a spare pool with no consumer axis")
	}
}

func TestOracleDocs(t *testing.T) {
	names := map[string]bool{}
	for _, o := range Oracles() {
		if o.Name == "" || o.Doc == "" || o.Check == nil {
			t.Fatalf("oracle %+v missing name, doc or check", o.Name)
		}
		if names[o.Name] {
			t.Fatalf("duplicate oracle name %s", o.Name)
		}
		names[o.Name] = true
	}
}

func TestGenOpsPrefixStable(t *testing.T) {
	for _, w := range WorkloadNames() {
		long, err := GenOps(w, 11, 200)
		if err != nil {
			t.Fatal(err)
		}
		short, err := GenOps(w, 11, 60)
		if err != nil {
			t.Fatal(err)
		}
		for i := range short {
			if short[i] != long[i] {
				t.Fatalf("workload %s not prefix-stable at op %d (the shrinker depends on this)", w, i)
			}
		}
	}
}

// TestBrokenRecoveryCaught proves the oracles have teeth: each sabotaged
// recovery mode must be caught on a small matrix, the failure must
// shrink, and the printed repro must replay to the same verdict.
func TestBrokenRecoveryCaught(t *testing.T) {
	modes := map[string]MatrixOpts{
		// Skipping the counter-replay step leaves stale counters behind a
		// clean-looking report; clean crashes alone expose it.
		"skip-counter-replay": {
			Designs: []string{"osiris", "ccnvm"}, Workloads: []string{"hot", "hammer"},
			Attacks: []string{"none"}, Seeds: 2, Ops: 160, CrashPts: 2,
		},
		// Dropping tamper evidence is exposed by spoof/splice cells.
		"ignore-tampered": {
			Designs: []string{"sc", "ccnvm"}, Workloads: []string{"hot"},
			Attacks: []string{"spoof", "splice"}, Seeds: 2, Ops: 160, CrashPts: 2,
		},
		// Skipping the tree-vs-root check loses the location of counter
		// replays on tree-persisting designs. The rewind must exceed the
		// stop-loss bound (hammer workload, N=4) — a smaller rewind is
		// silently healed by counter recovery and asserts nothing.
		"skip-root-check": {
			Designs: []string{"ccnvm", "sc"}, Workloads: []string{"hammer"},
			Attacks: []string{"counter-replay"}, Seeds: 2, Ops: 160, CrashPts: 2,
			Ns: []uint64{4},
		},
		// Erasing the media-loss classification claims lossless images over
		// torn and dropped drains; fault cells must trip the torn-write /
		// adr-budget oracles.
		"accept-torn": {
			Designs: []string{"ccnvm", "osiris"}, Workloads: []string{"hot"},
			Attacks: []string{"none"}, Seeds: 2, Ops: 160, CrashPts: 1,
			FaultSeeds: 4,
		},
	}
	for mode, opts := range modes {
		mode, opts := mode, opts
		t.Run(mode, func(t *testing.T) {
			t.Parallel()
			r, err := BrokenRunner(mode)
			if err != nil {
				t.Fatal(err)
			}
			sum := RunMatrix(context.Background(), r, EnumerateCells(opts), 0, nil)
			if !sum.Failed() {
				t.Fatalf("broken mode %q slipped past every oracle over %d cells", mode, sum.Cells)
			}
			f := sum.Failures[0]
			if !strings.HasPrefix(f.Repro, "go run ./cmd/ccnvm-torture -repro '") {
				t.Fatalf("failure carries no usable repro line: %q", f.Repro)
			}
			// The repro line must replay: parse the embedded spec and
			// re-run the minimized cell against the same broken runner.
			spec := strings.TrimSuffix(strings.TrimPrefix(f.Repro, "go run ./cmd/ccnvm-torture -repro '"), "'")
			cell, err := ParseCell(spec)
			if err != nil {
				t.Fatalf("repro spec does not parse: %v", err)
			}
			again := r.RunCell(cell)
			if again == nil {
				t.Fatalf("minimized repro %s no longer fails", f.Repro)
			}
			if again.Oracle != f.Oracle {
				t.Fatalf("repro fails a different oracle: %s vs %s", again.Oracle, f.Oracle)
			}
			// And the same cell must pass on the real recovery path.
			if g := DefaultRunner().RunCell(cell); g != nil {
				t.Fatalf("minimized cell also fails the real recovery: %v", g)
			}
			t.Logf("mode %s caught by oracle %q after %d shrink runs: %s", mode, f.Oracle, f.ShrinkRuns, f.Repro)
		})
	}
}

func TestShrinkReducesCleanFailure(t *testing.T) {
	r, err := BrokenRunner("skip-counter-replay")
	if err != nil {
		t.Fatal(err)
	}
	seedCell := Cell{Design: "osiris", Workload: "hammer", Seed: 1, Ops: 160, CrashAt: 150}
	f := r.RunCell(seedCell)
	if f == nil {
		t.Skip("seed cell did not fail under the broken runner")
	}
	min, runs := Shrink(r, *f, 64)
	if min.Cell.CrashAt > f.Cell.CrashAt {
		t.Fatalf("shrinking grew the crash point: %d -> %d", f.Cell.CrashAt, min.Cell.CrashAt)
	}
	if min.Cell.Ops != min.Cell.CrashAt {
		t.Fatalf("shrinker left a dead trace tail: ops=%d crash=%d", min.Cell.Ops, min.Cell.CrashAt)
	}
	if g := r.RunCell(min.Cell); g == nil || g.Oracle != min.Oracle {
		t.Fatalf("shrunk cell does not reproduce: %v", g)
	}
	t.Logf("shrunk crash %d -> %d in %d runs", f.Cell.CrashAt, min.Cell.CrashAt, runs)
}
