package torture

// Shrink minimizes a failing cell while preserving the violated oracle,
// re-running candidate cells against the same runner. It exploits the
// prefix-stability of GenOps: a cell with a smaller CrashAt executes a
// strict prefix of the original trace, so bisecting the crash point is a
// sound reduction. The search spends at most budget cell executions and
// returns the smallest still-failing cell plus the number of runs used.
//
// Five phases, each kept only if the cell still fails the same oracle:
//  1. drop the attack (a failure that survives as a clean crash is a
//     strictly simpler repro, whatever oracle it then trips);
//  2. reduce the fault dimensions: first all of them at once (a
//     faultless repro is strictly simpler, whatever oracle it trips),
//     then one dimension at a time, then the fault seed to 1;
//  3. reduce the reboot axis: drop it entirely, then halve the reboot
//     count toward one and walk the strike stride down toward 2;
//  4. bisect CrashAt downward, then walk it down linearly;
//  5. trim Ops to CrashAt so the repro generates no dead trace tail.
func Shrink(r *Runner, f Failure, budget int) (Failure, int) {
	if budget <= 0 {
		budget = 64
	}
	best := f
	best.Cell = best.Cell.normalized()
	runs := 0

	// try runs the candidate; it accepts the result as the new best when
	// it fails with the same oracle (sameOracle) or with any oracle.
	try := func(c Cell, sameOracle bool) bool {
		if runs >= budget {
			return false
		}
		runs++
		g := r.RunCell(c)
		if g == nil {
			return false
		}
		if sameOracle && g.Oracle != best.Oracle {
			return false
		}
		best = *g
		best.Cell = best.Cell.normalized()
		return true
	}

	// Phase 1: a cell that fails even without its attack is simpler.
	if best.Cell.Attack != "none" {
		c := best.Cell
		c.Attack = "none"
		try(c, false)
	}

	// Phase 2: reduce the fault dimensions.
	if best.Cell.Faulty() {
		c := best.Cell
		c.FaultSeed, c.Torn, c.ADRBudget, c.WeakPct, c.Stuck, c.Spares = 0, false, 0, 0, 0, 0
		try(c, false)
	}
	if best.Cell.Faulty() {
		if best.Cell.Torn {
			c := best.Cell
			c.Torn = false
			try(c, true)
		}
		if best.Cell.ADRBudget > 0 {
			c := best.Cell
			c.ADRBudget = 0
			try(c, true)
		}
		// Dropping the spare pool must precede dropping its consumer axes:
		// Validate forbids spares without weak or stuck lines.
		if best.Cell.Spares > 0 {
			c := best.Cell
			c.Spares = 0
			try(c, true)
		}
		if best.Cell.WeakPct > 0 && (best.Cell.Spares == 0 || best.Cell.Stuck > 0) {
			c := best.Cell
			c.WeakPct = 0
			try(c, true)
		}
		if best.Cell.Stuck > 0 && (best.Cell.Spares == 0 || best.Cell.WeakPct > 0) {
			c := best.Cell
			c.Stuck = 0
			try(c, true)
		}
		for runs < budget && best.Cell.Spares > 1 {
			// A smaller pool exhausts sooner; walk it toward one line.
			c := best.Cell
			c.Spares = best.Cell.Spares / 2
			if !try(c, true) {
				break
			}
		}
		if best.Cell.Faulty() && best.Cell.FaultSeed != 1 {
			c := best.Cell
			c.FaultSeed = 1
			try(c, true)
		}
	}

	// Phase 3: reduce the reboot axis. A cell that fails without reboots
	// is strictly simpler, whatever oracle it trips; otherwise fewer
	// passes and a smaller stride mean fewer recovery re-entries to read
	// through. The stride floor is 2 (Validate forbids stride 1 with
	// multiple reboots), reachable only once the count is down to 1.
	if best.Cell.Reboots > 0 {
		c := best.Cell
		c.Reboots, c.RebootEvery = 0, 0
		try(c, false)
	}
	for runs < budget && best.Cell.Reboots > 1 {
		c := best.Cell
		c.Reboots = best.Cell.Reboots / 2
		if !try(c, true) {
			break
		}
	}
	for runs < budget && best.Cell.Reboots > 0 && best.Cell.RebootEvery > 2 {
		c := best.Cell
		c.RebootEvery = best.Cell.RebootEvery - 1
		if !try(c, true) {
			break
		}
	}
	if best.Cell.Reboots == 1 && best.Cell.RebootEvery == 2 {
		c := best.Cell
		c.RebootEvery = 1
		try(c, true)
	}

	// Phase 4: bisect the crash point down, then creep linearly.
	for runs < budget && best.Cell.CrashAt > 1 {
		c := best.Cell
		c.CrashAt = best.Cell.CrashAt / 2
		if try(c, true) {
			continue
		}
		c = best.Cell
		c.CrashAt = best.Cell.CrashAt - 1
		if !try(c, true) {
			break
		}
	}

	// Phase 5: drop the trace tail past the crash.
	if best.Cell.Ops > best.Cell.CrashAt {
		c := best.Cell
		c.Ops = c.CrashAt
		try(c, true)
	}
	return best, runs
}
