package torture

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/nvm"
	"ccnvm/internal/recovery"
	"ccnvm/internal/seccrypto"
	"ccnvm/internal/trace"
)

// TestRegistryTortureGolden pins one torture seed bit-for-bit across the
// design-dispatch refactor: every design runs a fixed trace to a crash,
// gets each attack kind injected, and is recovered; the resulting crash
// image (content hash) and the full recovery report are compared against
// a golden file generated before the registry existed. Any change to how
// engines are built or recovery is dispatched that alters a single
// persisted byte or report field shows up as a diff here. Regenerate
// (only after an intentional behaviour change) with
//
//	go test ./internal/torture/ -run TestRegistryTortureGolden -golden.update
func TestRegistryTortureGolden(t *testing.T) {
	var lines []string
	for _, d := range DesignNames() {
		for _, atk := range []string{"none", "spoof", "counter-replay", "data-replay", "tree-spoof"} {
			c := Cell{Design: d, Workload: "hot", Seed: 7, Ops: 200, CrashAt: 120, Attack: atk, N: 4}
			lines = append(lines, cellDigest(t, c))
		}
		// One media-fault cell per design: the fault model and the
		// loss-vs-attack classification ride the same dispatch seams.
		fc := Cell{Design: d, Workload: "mixed", Seed: 7, Ops: 200, CrashAt: 133, Attack: "none",
			FaultSeed: 99, Torn: true, ADRBudget: 4, Stuck: 1}
		lines = append(lines, cellDigest(t, fc))
	}
	got := []byte(strings.Join(lines, "\n") + "\n")

	path := filepath.Join("testdata", "registry.golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -golden.update): %v", err)
	}
	if string(got) != string(want) {
		gl, wl := strings.Split(string(got), "\n"), strings.Split(string(want), "\n")
		for i := range gl {
			if i >= len(wl) || gl[i] != wl[i] {
				t.Fatalf("registry digest diverges from pre-refactor golden at line %d:\n got %s\nwant %s",
					i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("registry digest diverges from pre-refactor golden (length)")
	}
}

// cellDigest executes one cell exactly as RunCell does (trace drive,
// mid-trace snapshot, attack injection, recovery) and condenses the
// crash image and recovery report into one comparable line.
func cellDigest(t *testing.T, c Cell) string {
	t.Helper()
	return cellDigestWorkers(t, c, 0)
}

// cellDigestWorkers is cellDigest with an explicit parallel-pipeline
// width; the parallel bit-identity test compares its output across
// worker counts, and 0 (serial) reproduces the pinned golden lines.
func cellDigestWorkers(t *testing.T, c Cell, workers int) string {
	t.Helper()
	c = c.normalized()
	ops, err := GenOps(c.Workload, c.Seed, c.Ops)
	if err != nil {
		t.Fatal(err)
	}
	eng, _, err := BuildEngine(c.Design, engine.Params{UpdateLimit: c.N, QueueEntries: c.M, Workers: workers}, c.faultModel())
	if err != nil {
		t.Fatal(err)
	}
	ref := NewReference(mem.MustLayout(Capacity), seccrypto.DefaultKeys())
	snapAt := c.CrashAt / 2
	var snap *nvm.Image
	var snapWrites map[mem.Addr]uint64
	now := int64(0)
	for i, op := range ops[:c.CrashAt] {
		if i == snapAt {
			snap = eng.(interface{ NVMSnapshot() *nvm.Image }).NVMSnapshot()
			snapWrites = ref.WriteCounts()
		}
		now += int64(op.Gap)
		switch op.Kind {
		case trace.Store:
			pt := pattern(op.Addr, byte(i))
			now = eng.WriteBack(now, op.Addr, pt) + 8
			ref.WriteBack(op.Addr, pt)
		case trace.Load:
			_, done := eng.ReadBlock(now, op.Addr)
			now = done + 8
		}
	}
	img := eng.Crash()
	if _, _, err := injectAttack(c, img, snap, snapWrites, ref); err != nil {
		t.Fatal(err)
	}
	rep := recovery.Recover(img)

	h := sha256.New()
	for _, a := range img.Image.Store.Addrs() {
		l, _ := img.Image.Read(a)
		var ab [8]byte
		binary.LittleEndian.PutUint64(ab[:], uint64(a))
		h.Write(ab[:])
		h.Write(l[:])
	}
	h.Write(img.TCB.RootNew[:])
	h.Write(img.TCB.RootOld[:])
	return fmt.Sprintf("%s img=%x store=%d nwb=%d root=%q nretry=%d blocks=%d lines=%d mism=%d tamp=%d pages=%d replay=%v lost=%d errs=%d window=%v rebuilt=%x",
		c.String(), h.Sum(nil)[:8], img.Image.Store.Len(), img.TCB.Nwb, rep.ConsistentRoot,
		rep.Nretry, rep.RecoveredBlocks, rep.RecoveredLines,
		len(rep.TreeMismatches), len(rep.Tampered), len(rep.ReplayedPages), rep.PotentialReplay,
		len(rep.LostBlocks), len(rep.MediaErrors), rep.CrashLossWindow, rep.RebuiltRoot[:8])
}
