package seccrypto

import (
	"math/rand"
	"testing"

	"ccnvm/internal/mem"
)

// TestMemoizedEngineMatchesUncached is the memoization equivalence
// test: a cached engine and a fresh uncached engine must agree on every
// ciphertext, plaintext and HMAC over a randomized trace with heavy
// key reuse (reuse is what populates and exercises the memo tables).
func TestMemoizedEngineMatchesUncached(t *testing.T) {
	cached := testEngine(t)
	golden, err := NewEngineUncached(DefaultKeys())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))

	// Small pools force repeats: addresses, counters and line payloads
	// all recur, so hits happen on every table.
	addrs := make([]mem.Addr, 32)
	for i := range addrs {
		addrs[i] = mem.Addr(rng.Intn(1<<20)) * mem.LineSize
	}
	lines := make([]mem.Line, 16)
	for i := range lines {
		rng.Read(lines[i][:])
	}

	for i := 0; i < 20000; i++ {
		addr := addrs[rng.Intn(len(addrs))]
		counter := uint64(rng.Intn(8)) // includes 0: the never-written path
		pt := lines[rng.Intn(len(lines))]

		ct := cached.Encrypt(addr, counter, pt)
		if want := golden.Encrypt(addr, counter, pt); ct != want {
			t.Fatalf("op %d: Encrypt(%#x, %d) diverges", i, addr, counter)
		}
		if got, want := cached.Decrypt(addr, counter, ct), golden.Decrypt(addr, counter, ct); got != want {
			t.Fatalf("op %d: Decrypt(%#x, %d) diverges", i, addr, counter)
		} else if got != pt {
			t.Fatalf("op %d: Decrypt does not invert Encrypt", i)
		}
		if got, want := cached.DataHMAC(addr, counter, ct), golden.DataHMAC(addr, counter, ct); got != want {
			t.Fatalf("op %d: DataHMAC(%#x, %d) diverges", i, addr, counter)
		}
		if got, want := cached.NodeHMAC(pt), golden.NodeHMAC(pt); got != want {
			t.Fatalf("op %d: NodeHMAC diverges", i)
		}
	}

	cs := cached.CacheStats()
	if cs.PadHits == 0 || cs.DataHits == 0 || cs.NodeHits == 0 {
		t.Fatalf("trace did not exercise all memo tables: %+v", cs)
	}
	if gs := golden.CacheStats(); gs != (CacheStats{}) {
		t.Fatalf("uncached engine counted memo traffic: %+v", gs)
	}
}

// TestMemoCollisionEviction pins down the direct-mapped conflict path:
// two keys that map to the same slot must each still produce correct
// results as they evict one another.
func TestMemoCollisionEviction(t *testing.T) {
	cached := testEngine(t)
	golden, err := NewEngineUncached(DefaultKeys())
	if err != nil {
		t.Fatal(err)
	}
	// Find two (addr, counter) keys that collide in the pad table.
	slots := uint64(len(cached.pads))
	a1, c1 := mem.Addr(0), uint64(1)
	idx := mem.Mix64(uint64(a1)^mem.Mix64(c1)) & (slots - 1)
	var a2 mem.Addr
	for a := mem.Addr(mem.LineSize); ; a += mem.LineSize {
		if mem.Mix64(uint64(a)^mem.Mix64(c1))&(slots-1) == idx {
			a2 = a
			break
		}
	}
	var pt mem.Line
	pt[0] = 0xAB
	for i := 0; i < 4; i++ { // alternate so each lookup evicts the other
		if got, want := cached.Encrypt(a1, c1, pt), golden.Encrypt(a1, c1, pt); got != want {
			t.Fatalf("round %d: colliding key 1 diverges", i)
		}
		if got, want := cached.Encrypt(a2, c1, pt), golden.Encrypt(a2, c1, pt); got != want {
			t.Fatalf("round %d: colliding key 2 diverges", i)
		}
	}
	if cs := cached.CacheStats(); cs.PadMisses < 8 {
		t.Fatalf("colliding keys did not evict each other: %+v", cs)
	}
}
