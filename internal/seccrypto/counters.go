// Package seccrypto implements the cryptographic substrate of the
// secure memory controller: the split-counter encoding used by counter
// lines, counter-mode encryption (CME) with AES-generated one-time pads,
// and the 128-bit truncated HMACs used for data authentication and for
// Bonsai-Merkle-Tree nodes.
//
// Unlike most architecture-simulator reproductions, this layer is fully
// functional: data written to the NVM model really is AES-encrypted and
// really carries verifiable HMACs, so integrity attacks are detected by
// actual verification failures rather than by bookkeeping flags. Timing
// (AES and HMAC latencies) is charged separately by the simulator.
package seccrypto

import (
	"encoding/binary"
	"fmt"

	"ccnvm/internal/mem"
)

// MinorBits is the width of a per-block minor counter in the
// split-counter organization; MinorMax is its largest value.
const (
	MinorBits = 7
	MinorMax  = 1<<MinorBits - 1
)

// CounterLine is the decoded form of one 64 B counter line: a 64-bit
// major counter shared by a 4 KB page plus one 7-bit minor counter per
// 64 B block, exactly filling a line (8 + 64*7/8 = 64 bytes).
//
// The effective per-block counter used as the CME seed and as HMAC input
// is Major*2^7 + Minor[slot]; a minor overflow bumps the major counter,
// clears every minor, and forces re-encryption of the whole page.
type CounterLine struct {
	Major  uint64
	Minors [mem.BlocksPerPage]uint8
}

// Counter returns the effective counter value of block slot.
func (c *CounterLine) Counter(slot int) uint64 {
	return c.Major<<MinorBits | uint64(c.Minors[slot])
}

// Bump increments the minor counter of slot. If the minor would
// overflow, it instead bumps the major counter, clears all minors, sets
// slot's minor to 1 and reports overflow=true: the caller must
// re-encrypt every block of the page under the new major.
func (c *CounterLine) Bump(slot int) (overflow bool) {
	if c.Minors[slot] < MinorMax {
		c.Minors[slot]++
		return false
	}
	c.Major++
	c.Minors = [mem.BlocksPerPage]uint8{}
	c.Minors[slot] = 1
	return true
}

// Encode packs the counter line into its 64-byte NVM representation:
// the major counter in the first 8 bytes (little endian), then the 64
// seven-bit minors bit-packed into the remaining 56 bytes.
func (c *CounterLine) Encode() mem.Line {
	var l mem.Line
	binary.LittleEndian.PutUint64(l[:8], c.Major)
	bitpos := 0
	for _, m := range c.Minors {
		byteIdx := 8 + bitpos/8
		off := bitpos % 8
		v := uint16(m&MinorMax) << off
		l[byteIdx] |= byte(v)
		if off > 8-MinorBits {
			l[byteIdx+1] |= byte(v >> 8)
		}
		bitpos += MinorBits
	}
	return l
}

// DecodeCounterLine unpacks a 64-byte counter line. The all-zero line
// decodes to the all-zero counter state, so untouched NVM reads as
// "never encrypted" (counter value 0).
func DecodeCounterLine(l mem.Line) CounterLine {
	var c CounterLine
	c.Major = binary.LittleEndian.Uint64(l[:8])
	bitpos := 0
	for i := range c.Minors {
		byteIdx := 8 + bitpos/8
		off := bitpos % 8
		v := uint16(l[byteIdx]) >> off
		if off > 8-MinorBits {
			v |= uint16(l[byteIdx+1]) << (8 - off)
		}
		c.Minors[i] = uint8(v & MinorMax)
		bitpos += MinorBits
	}
	return c
}

// String summarizes a counter line for diagnostics.
func (c *CounterLine) String() string {
	nonzero := 0
	for _, m := range c.Minors {
		if m != 0 {
			nonzero++
		}
	}
	return fmt.Sprintf("ctr{major=%d dirtyMinors=%d}", c.Major, nonzero)
}
