package seccrypto

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccnvm/internal/mem"
)

func testEngine(t testing.TB) *Engine {
	t.Helper()
	e, err := NewEngine(DefaultKeys())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCounterLineCodecRoundTrip(t *testing.T) {
	f := func(major uint64, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var c CounterLine
		c.Major = major
		for i := range c.Minors {
			c.Minors[i] = uint8(rng.Intn(MinorMax + 1))
		}
		got := DecodeCounterLine(c.Encode())
		return got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCounterLineZeroDecodesToZero(t *testing.T) {
	var l mem.Line
	c := DecodeCounterLine(l)
	if c.Major != 0 {
		t.Fatal("zero line has nonzero major")
	}
	for i, m := range c.Minors {
		if m != 0 {
			t.Fatalf("zero line has nonzero minor %d at %d", m, i)
		}
	}
}

func TestCounterBump(t *testing.T) {
	var c CounterLine
	for i := 1; i <= MinorMax; i++ {
		if c.Bump(3) {
			t.Fatalf("unexpected overflow at bump %d", i)
		}
		if got := c.Counter(3); got != uint64(i) {
			t.Fatalf("counter = %d after %d bumps", got, i)
		}
	}
	// Next bump overflows: major++, minors reset, slot gets 1.
	c.Minors[7] = 5
	if !c.Bump(3) {
		t.Fatal("expected overflow")
	}
	if c.Major != 1 || c.Minors[3] != 1 || c.Minors[7] != 0 {
		t.Fatalf("post-overflow state wrong: %+v", c)
	}
	// Effective counters strictly increase across the overflow.
	if c.Counter(3) != 1<<MinorBits|1 {
		t.Fatalf("counter after overflow = %d", c.Counter(3))
	}
}

func TestCounterMonotoneAcrossOverflow(t *testing.T) {
	var c CounterLine
	prev := c.Counter(0)
	for i := 0; i < 3*MinorMax; i++ {
		c.Bump(0)
		cur := c.Counter(0)
		if cur <= prev {
			t.Fatalf("counter not strictly increasing: %d -> %d", prev, cur)
		}
		prev = cur
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	e := testEngine(t)
	f := func(addrRaw uint32, counter uint64, data [8]uint64) bool {
		addr := mem.Align(mem.Addr(addrRaw))
		var pt mem.Line
		for i, v := range data {
			for b := 0; b < 8; b++ {
				pt[i*8+b] = byte(v >> (8 * b))
			}
		}
		ct := e.Encrypt(addr, counter, pt)
		return e.Decrypt(addr, counter, ct) == pt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncryptCounterZeroIsIdentity(t *testing.T) {
	e := testEngine(t)
	var pt mem.Line
	pt[10] = 42
	if e.Encrypt(640, 0, pt) != pt {
		t.Fatal("counter 0 must be identity (never-written semantics)")
	}
}

func TestEncryptionActuallyScrambles(t *testing.T) {
	e := testEngine(t)
	var pt mem.Line
	ct := e.Encrypt(0, 1, pt)
	if ct == pt {
		t.Fatal("ciphertext equals plaintext under nonzero counter")
	}
}

func TestPadUniqueness(t *testing.T) {
	e := testEngine(t)
	// Different counters, different addresses => different ciphertexts of
	// the same plaintext (pad reuse would break CME security).
	var pt mem.Line
	seen := map[mem.Line]string{}
	for _, addr := range []mem.Addr{0, 64, 4096} {
		for ctr := uint64(1); ctr <= 4; ctr++ {
			ct := e.Encrypt(addr, ctr, pt)
			if prev, dup := seen[ct]; dup {
				t.Fatalf("pad collision: (%#x,%d) with %s", uint64(addr), ctr, prev)
			}
			seen[ct] = "earlier pair"
		}
	}
}

func TestDataHMACSensitivity(t *testing.T) {
	e := testEngine(t)
	var ct mem.Line
	ct[0] = 1
	base := e.DataHMAC(64, 5, ct)
	if e.DataHMAC(64, 5, ct) != base {
		t.Fatal("HMAC not deterministic")
	}
	if e.DataHMAC(128, 5, ct) == base {
		t.Fatal("HMAC insensitive to address (splicing would pass)")
	}
	if e.DataHMAC(64, 6, ct) == base {
		t.Fatal("HMAC insensitive to counter (replay would pass)")
	}
	ct[0] = 2
	if e.DataHMAC(64, 5, ct) == base {
		t.Fatal("HMAC insensitive to data (spoofing would pass)")
	}
}

func TestNodeHMACSensitivity(t *testing.T) {
	e := testEngine(t)
	var n mem.Line
	n[3] = 9
	base := e.NodeHMAC(n)
	if e.NodeHMAC(n) != base {
		t.Fatal("node HMAC not deterministic")
	}
	n[3] = 10
	if e.NodeHMAC(n) == base {
		t.Fatal("node HMAC insensitive to child content")
	}
	if e.NodeHMAC(n) == e.DataHMAC(0, 0, n) {
		t.Fatal("node and data HMAC domains collide")
	}
}

func TestHMACSlotPackUnpack(t *testing.T) {
	var l mem.Line
	var hs [4]HMAC
	for s := range hs {
		for i := range hs[s] {
			hs[s][i] = byte(s*16 + i)
		}
		PutHMAC(&l, s, hs[s])
	}
	for s := range hs {
		if GetHMAC(l, s) != hs[s] {
			t.Fatalf("slot %d round-trip failed", s)
		}
	}
}

func TestDistinctKeysDistinctOutputs(t *testing.T) {
	k2 := DefaultKeys()
	k2.AES[0] ^= 1
	k2.HMAC[0] ^= 1
	e1 := testEngine(t)
	e2 := MustEngine(k2)
	var pt mem.Line
	pt[5] = 7
	if e1.Encrypt(0, 1, pt) == e2.Encrypt(0, 1, pt) {
		t.Fatal("different AES keys produce same ciphertext")
	}
	if e1.DataHMAC(0, 1, pt) == e2.DataHMAC(0, 1, pt) {
		t.Fatal("different HMAC keys produce same HMAC")
	}
}

func BenchmarkEncrypt(b *testing.B) {
	e := testEngine(b)
	var pt mem.Line
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pt = e.Encrypt(mem.Addr(i*64), uint64(i)+1, pt)
	}
}

func BenchmarkDataHMAC(b *testing.B) {
	e := testEngine(b)
	var ct mem.Line
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.DataHMAC(mem.Addr(i*64), uint64(i)+1, ct)
	}
}
