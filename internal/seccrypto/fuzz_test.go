package seccrypto

import (
	"testing"

	"ccnvm/internal/mem"
)

// FuzzCounterCodec: every 64-byte line decodes and re-encodes to the
// identical bytes (the codec is a bijection on valid encodings).
func FuzzCounterCodec(f *testing.F) {
	f.Add(make([]byte, mem.LineSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		var l mem.Line
		copy(l[:], data)
		c := DecodeCounterLine(l)
		if DecodeCounterLine(c.Encode()) != c {
			t.Fatal("decode/encode/decode not stable")
		}
	})
}
