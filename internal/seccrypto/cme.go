package seccrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"hash"

	"ccnvm/internal/mem"
)

// Keys holds the two secrets of the secure processor: the AES key used
// for pad generation and the HMAC key used for data and counter HMACs.
// In hardware both live in on-chip fuses/registers inside the TCB.
type Keys struct {
	AES  [16]byte
	HMAC [20]byte
}

// DefaultKeys returns a fixed deterministic key pair. Simulations are
// reproducible by default; callers wanting distinct domains can supply
// their own keys.
func DefaultKeys() Keys {
	var k Keys
	for i := range k.AES {
		k.AES[i] = byte(0xA5 ^ i*7)
	}
	for i := range k.HMAC {
		k.HMAC[i] = byte(0x3C ^ i*11)
	}
	return k
}

// Engine performs the actual cryptography: OTP generation, block
// encryption/decryption and HMAC computation. A reusable HMAC instance
// avoids re-deriving the key pads on every authentication, which the
// simulator performs millions of times, and bounded direct-mapped memo
// tables (see memo.go) serve recurring pads and HMACs without redoing
// the AES/SHA-1 work; as a consequence an Engine is not safe for
// concurrent use — give each goroutine its own.
type Engine struct {
	keys  Keys // retained so Fork can derive sibling engines
	block cipher.Block
	hkey  []byte
	mac   hash.Hash
	sum   [sha1.Size]byte

	// Scratch buffers keep hot-path crypto allocation free: slices of
	// local arrays passed to hash/cipher interface methods escape, so
	// inputs are staged in engine-owned memory instead.
	msg        [mem.LineSize + 16]byte // HMAC input: line content (+ addr/counter header)
	seed       [16]byte                // AES pad seed
	padScratch mem.Line                // pad destination when the pad cache is off

	// Memo tables; nil when the engine is uncached.
	pads   []padSlot
	datas  []dataSlot
	nodes  []nodeSlot
	cstats CacheStats
}

// NewEngine builds an Engine from keys, with the default memo tables
// enabled. It fails only if the AES key size is rejected by the cipher
// package, which cannot happen for the fixed 16-byte key type, but the
// error is propagated for form.
func NewEngine(k Keys) (*Engine, error) {
	e, err := NewEngineUncached(k)
	if err != nil {
		return nil, err
	}
	e.pads = make([]padSlot, DefaultPadSlots)
	e.datas = make([]dataSlot, DefaultDataSlots)
	e.nodes = make([]nodeSlot, DefaultNodeSlots)
	return e, nil
}

// NewEngineUncached builds an Engine with memoization disabled: every
// call performs the full AES/SHA-1 computation. Equivalence tests use
// it as the golden reference for the cached engine.
func NewEngineUncached(k Keys) (*Engine, error) {
	b, err := aes.NewCipher(k.AES[:])
	if err != nil {
		return nil, fmt.Errorf("seccrypto: %w", err)
	}
	hk := make([]byte, len(k.HMAC))
	copy(hk, k.HMAC[:])
	return &Engine{keys: k, block: b, hkey: hk, mac: hmac.New(sha1.New, hk)}, nil
}

// Fork builds a fresh Engine over the same keys, with its own memo
// tables and scratch state (empty, not copied). Engines are not safe
// for concurrent use, so parallel tree workers fork one engine each;
// forked results are bit-identical to the parent's by construction —
// memoization never changes answers, only whether the AES/SHA-1 work
// is redone.
func (e *Engine) Fork() *Engine {
	f, err := NewEngineUncached(e.keys)
	if err != nil {
		panic(err) // the parent's key was already accepted
	}
	if e.pads != nil {
		f.pads = make([]padSlot, len(e.pads))
		f.datas = make([]dataSlot, len(e.datas))
		f.nodes = make([]nodeSlot, len(e.nodes))
	}
	return f
}

// MustEngine is NewEngine with panic-on-error for tests and examples.
func MustEngine(k Keys) *Engine {
	e, err := NewEngine(k)
	if err != nil {
		panic(err)
	}
	return e
}

// CacheStats returns the engine's memo-table hit/miss counters.
func (e *Engine) CacheStats() CacheStats { return e.cstats }

// computePad generates the 64-byte one-time pad for (addr, counter)
// into dst: four AES blocks, each encrypting a seed of the line
// address, the effective counter and the block index within the line.
// Seed uniqueness is the CME security requirement; it holds because
// counters never repeat for the same address and the address/block-
// index pair separates pads spatially.
func (e *Engine) computePad(dst *mem.Line, addr mem.Addr, counter uint64) {
	binary.LittleEndian.PutUint64(e.seed[0:8], uint64(addr))
	binary.LittleEndian.PutUint64(e.seed[8:16], counter)
	for i := 0; i < mem.LineSize/aes.BlockSize; i++ {
		e.seed[7] ^= byte(i) // fold the intra-line block index into the seed
		e.block.Encrypt(dst[i*aes.BlockSize:(i+1)*aes.BlockSize], e.seed[:])
		e.seed[7] ^= byte(i)
	}
}

// Encrypt XORs plaintext with the OTP of (addr, counter).
//
// Counter value 0 means "never written": the pad is skipped so that an
// all-zero NVM image decodes to all-zero plaintext without touching the
// cipher. Real systems achieve the same effect with an initialization
// sweep; eliding it keeps sparse images cheap and is behaviourally
// identical.
func (e *Engine) Encrypt(addr mem.Addr, counter uint64, plaintext mem.Line) mem.Line {
	if counter == 0 {
		return plaintext
	}
	p := e.padFor(addr, counter)
	var ct mem.Line
	for i := 0; i < mem.LineSize; i += 8 {
		binary.LittleEndian.PutUint64(ct[i:],
			binary.LittleEndian.Uint64(plaintext[i:])^binary.LittleEndian.Uint64(p[i:]))
	}
	return ct
}

// Decrypt inverts Encrypt; CME is an XOR stream so the operations are
// symmetric.
func (e *Engine) Decrypt(addr mem.Addr, counter uint64, ciphertext mem.Line) mem.Line {
	return e.Encrypt(addr, counter, ciphertext)
}

// HMAC is a 128-bit truncated authentication code.
type HMAC [mem.HMACSize]byte

// DataHMAC computes the data HMAC of one block: a keyed hash over the
// encrypted data, its address and its effective counter, truncated to
// 128 bits. Including the MT-protected counter is what lets the Bonsai
// scheme leave data blocks out of the tree while remaining immune to
// replay.
func (e *Engine) DataHMAC(addr mem.Addr, counter uint64, ciphertext mem.Line) HMAC {
	if e.datas == nil {
		return e.computeDataHMAC(addr, counter, &ciphertext)
	}
	s := &e.datas[mem.Mix64(uint64(addr)^mem.Mix64(counter))&uint64(len(e.datas)-1)]
	if s.live && s.addr == addr && s.counter == counter && s.ct == ciphertext {
		e.cstats.DataHits++
		return s.h
	}
	e.cstats.DataMisses++
	h := e.computeDataHMAC(addr, counter, &ciphertext)
	s.addr, s.counter, s.ct, s.h, s.live = addr, counter, ciphertext, h, true
	return h
}

// computeDataHMAC performs the actual keyed hash. The message (the
// ciphertext followed by the addr/counter header) is staged in the
// engine's scratch buffer so nothing escapes to the heap per call.
func (e *Engine) computeDataHMAC(addr mem.Addr, counter uint64, ciphertext *mem.Line) HMAC {
	copy(e.msg[:mem.LineSize], ciphertext[:])
	binary.LittleEndian.PutUint64(e.msg[mem.LineSize:mem.LineSize+8], uint64(addr))
	binary.LittleEndian.PutUint64(e.msg[mem.LineSize+8:], counter)
	e.mac.Reset()
	e.mac.Write(e.msg[:])
	var h HMAC
	copy(h[:], e.mac.Sum(e.sum[:0]))
	return h
}

// NodeHMAC computes the counter HMAC of a Merkle-tree child: a keyed
// hash over the child node's 64-byte content, truncated to 128 bits.
// The parent node stores one such HMAC per child; position binding comes
// from the slot ordering inside the parent, so the child address is
// deliberately not an input — this keeps default (all-zero) subtrees
// uniform per level, which lets sparse images memoize them.
func (e *Engine) NodeHMAC(child mem.Line) HMAC {
	if e.nodes == nil {
		return e.computeNodeHMAC(&child)
	}
	s := &e.nodes[mem.HashLine(&child)&uint64(len(e.nodes)-1)]
	if s.live && s.content == child {
		e.cstats.NodeHits++
		return s.h
	}
	e.cstats.NodeMisses++
	h := e.computeNodeHMAC(&child)
	s.content, s.h, s.live = child, h, true
	return h
}

// computeNodeHMAC performs the actual keyed hash over a node's content,
// staged through the engine scratch buffer like computeDataHMAC.
func (e *Engine) computeNodeHMAC(child *mem.Line) HMAC {
	copy(e.msg[:mem.LineSize], child[:])
	e.mac.Reset()
	e.mac.Write(e.msg[:mem.LineSize])
	var h HMAC
	copy(h[:], e.mac.Sum(e.sum[:0]))
	return h
}

// PutHMAC writes h into slot s (0..3) of line l.
func PutHMAC(l *mem.Line, s int, h HMAC) {
	copy(l[s*mem.HMACSize:(s+1)*mem.HMACSize], h[:])
}

// GetHMAC extracts slot s (0..3) of line l.
func GetHMAC(l mem.Line, s int) HMAC {
	var h HMAC
	copy(h[:], l[s*mem.HMACSize:(s+1)*mem.HMACSize])
	return h
}
