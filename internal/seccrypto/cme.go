package seccrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"hash"

	"ccnvm/internal/mem"
)

// Keys holds the two secrets of the secure processor: the AES key used
// for pad generation and the HMAC key used for data and counter HMACs.
// In hardware both live in on-chip fuses/registers inside the TCB.
type Keys struct {
	AES  [16]byte
	HMAC [20]byte
}

// DefaultKeys returns a fixed deterministic key pair. Simulations are
// reproducible by default; callers wanting distinct domains can supply
// their own keys.
func DefaultKeys() Keys {
	var k Keys
	for i := range k.AES {
		k.AES[i] = byte(0xA5 ^ i*7)
	}
	for i := range k.HMAC {
		k.HMAC[i] = byte(0x3C ^ i*11)
	}
	return k
}

// Engine performs the actual cryptography: OTP generation, block
// encryption/decryption and HMAC computation. A reusable HMAC instance
// avoids re-deriving the key pads on every authentication, which the
// simulator performs millions of times; as a consequence an Engine is
// not safe for concurrent use — give each goroutine its own.
type Engine struct {
	block cipher.Block
	hkey  []byte
	mac   hash.Hash
	sum   [sha1.Size]byte
}

// NewEngine builds an Engine from keys. It fails only if the AES key
// size is rejected by the cipher package, which cannot happen for the
// fixed 16-byte key type, but the error is propagated for form.
func NewEngine(k Keys) (*Engine, error) {
	b, err := aes.NewCipher(k.AES[:])
	if err != nil {
		return nil, fmt.Errorf("seccrypto: %w", err)
	}
	hk := make([]byte, len(k.HMAC))
	copy(hk, k.HMAC[:])
	return &Engine{block: b, hkey: hk, mac: hmac.New(sha1.New, hk)}, nil
}

// MustEngine is NewEngine with panic-on-error for tests and examples.
func MustEngine(k Keys) *Engine {
	e, err := NewEngine(k)
	if err != nil {
		panic(err)
	}
	return e
}

// pad generates the 64-byte one-time pad for (addr, counter): four AES
// blocks, each encrypting a seed of the line address, the effective
// counter and the block index within the line. Seed uniqueness is the
// CME security requirement; it holds because counters never repeat for
// the same address and the address/block-index pair separates pads
// spatially.
func (e *Engine) pad(addr mem.Addr, counter uint64) mem.Line {
	var p mem.Line
	var seed [16]byte
	binary.LittleEndian.PutUint64(seed[0:8], uint64(addr))
	binary.LittleEndian.PutUint64(seed[8:16], counter)
	for i := 0; i < mem.LineSize/aes.BlockSize; i++ {
		seed[7] ^= byte(i) // fold the intra-line block index into the seed
		e.block.Encrypt(p[i*aes.BlockSize:(i+1)*aes.BlockSize], seed[:])
		seed[7] ^= byte(i)
	}
	return p
}

// Encrypt XORs plaintext with the OTP of (addr, counter).
//
// Counter value 0 means "never written": the pad is skipped so that an
// all-zero NVM image decodes to all-zero plaintext without touching the
// cipher. Real systems achieve the same effect with an initialization
// sweep; eliding it keeps sparse images cheap and is behaviourally
// identical.
func (e *Engine) Encrypt(addr mem.Addr, counter uint64, plaintext mem.Line) mem.Line {
	if counter == 0 {
		return plaintext
	}
	p := e.pad(addr, counter)
	var ct mem.Line
	for i := range ct {
		ct[i] = plaintext[i] ^ p[i]
	}
	return ct
}

// Decrypt inverts Encrypt; CME is an XOR stream so the operations are
// symmetric.
func (e *Engine) Decrypt(addr mem.Addr, counter uint64, ciphertext mem.Line) mem.Line {
	return e.Encrypt(addr, counter, ciphertext)
}

// HMAC is a 128-bit truncated authentication code.
type HMAC [mem.HMACSize]byte

// DataHMAC computes the data HMAC of one block: a keyed hash over the
// encrypted data, its address and its effective counter, truncated to
// 128 bits. Including the MT-protected counter is what lets the Bonsai
// scheme leave data blocks out of the tree while remaining immune to
// replay.
func (e *Engine) DataHMAC(addr mem.Addr, counter uint64, ciphertext mem.Line) HMAC {
	e.mac.Reset()
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(addr))
	binary.LittleEndian.PutUint64(hdr[8:16], counter)
	e.mac.Write(ciphertext[:])
	e.mac.Write(hdr[:])
	var h HMAC
	copy(h[:], e.mac.Sum(e.sum[:0]))
	return h
}

// NodeHMAC computes the counter HMAC of a Merkle-tree child: a keyed
// hash over the child node's 64-byte content, truncated to 128 bits.
// The parent node stores one such HMAC per child; position binding comes
// from the slot ordering inside the parent, so the child address is
// deliberately not an input — this keeps default (all-zero) subtrees
// uniform per level, which lets sparse images memoize them.
func (e *Engine) NodeHMAC(child mem.Line) HMAC {
	e.mac.Reset()
	e.mac.Write(child[:])
	var h HMAC
	copy(h[:], e.mac.Sum(e.sum[:0]))
	return h
}

// PutHMAC writes h into slot s (0..3) of line l.
func PutHMAC(l *mem.Line, s int, h HMAC) {
	copy(l[s*mem.HMACSize:(s+1)*mem.HMACSize], h[:])
}

// GetHMAC extracts slot s (0..3) of line l.
func GetHMAC(l mem.Line, s int) HMAC {
	var h HMAC
	copy(h[:], l[s*mem.HMACSize:(s+1)*mem.HMACSize])
	return h
}
