package seccrypto

import "ccnvm/internal/mem"

// The engine's memo tables exploit the redundancy of security-metadata
// accesses (Phoenix and "Streamlining Integrity Tree Updates" make the
// same observation in hardware): the simulator recomputes the same OTP
// pads, data HMACs and tree-node HMACs constantly, and every recompute
// is real AES/SHA-1 work. Each table is a fixed-size direct-mapped
// array indexed by a deterministic hash; a hit requires an exact key
// match (full 64-byte content compare where content is part of the
// key), so memoized answers are bit-identical to recomputed ones by
// construction, and a run's results cannot depend on cache geometry.
// Plain Go maps are deliberately avoided: bounded memory, no GC
// pressure, and no seed-randomized behaviour.
//
// Default table sizes (entries; must be powers of two):
const (
	// DefaultPadSlots bounds the OTP pad cache: 2048 x ~88 B = ~176 KB.
	DefaultPadSlots = 2048
	// DefaultDataSlots bounds the data-HMAC memo: 4096 x ~112 B = ~448 KB.
	DefaultDataSlots = 4096
	// DefaultNodeSlots bounds the node-HMAC memo: 4096 x ~88 B = ~352 KB.
	DefaultNodeSlots = 4096
)

// CacheStats counts memo-table hits and misses. The counters are purely
// observational: modeled latencies (SecStats.HMACOps/AESOps and the
// cycle charges) are accounted by the timing model regardless of
// whether the functional result came from a memo.
type CacheStats struct {
	PadHits, PadMisses   uint64 // OTP pad cache (addr, counter) -> pad
	DataHits, DataMisses uint64 // data-HMAC memo (addr, counter, ct) -> HMAC
	NodeHits, NodeMisses uint64 // node-HMAC memo (content) -> HMAC
}

// Add accumulates o into s.
func (s *CacheStats) Add(o CacheStats) {
	s.PadHits += o.PadHits
	s.PadMisses += o.PadMisses
	s.DataHits += o.DataHits
	s.DataMisses += o.DataMisses
	s.NodeHits += o.NodeHits
	s.NodeMisses += o.NodeMisses
}

// padSlot caches one generated one-time pad.
type padSlot struct {
	addr    mem.Addr
	counter uint64
	live    bool
	pad     mem.Line
}

// dataSlot caches one data-HMAC result; the ciphertext is part of the
// key and compared in full on lookup.
type dataSlot struct {
	addr    mem.Addr
	counter uint64
	live    bool
	ct      mem.Line
	h       HMAC
}

// nodeSlot caches one tree-node HMAC keyed by the node's full content.
type nodeSlot struct {
	live    bool
	content mem.Line
	h       HMAC
}

// padFor returns a pointer to the OTP pad for (addr, counter), serving
// it from the pad cache when possible. The pointer aliases the cache
// slot (or the uncached scratch pad) and is only valid until the next
// engine call — callers consume it immediately.
func (e *Engine) padFor(addr mem.Addr, counter uint64) *mem.Line {
	if e.pads == nil {
		e.computePad(&e.padScratch, addr, counter)
		return &e.padScratch
	}
	s := &e.pads[mem.Mix64(uint64(addr)^mem.Mix64(counter))&uint64(len(e.pads)-1)]
	if s.live && s.addr == addr && s.counter == counter {
		e.cstats.PadHits++
		return &s.pad
	}
	e.cstats.PadMisses++
	e.computePad(&s.pad, addr, counter)
	s.addr, s.counter, s.live = addr, counter, true
	return &s.pad
}
