package compress

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"ccnvm/internal/mem"
)

func lineOfWords(ws [8]uint64) mem.Line {
	var l mem.Line
	for i, w := range ws {
		binary.LittleEndian.PutUint64(l[i*8:i*8+8], w)
	}
	return l
}

func TestZeroLine(t *testing.T) {
	enc, p, ok := Compress(mem.Line{}, 40)
	if !ok || enc != EncZero || p != nil {
		t.Fatalf("zero line: enc=%v ok=%v", enc, ok)
	}
	got, err := Decompress(enc, p)
	if err != nil || got != (mem.Line{}) {
		t.Fatal("zero round trip failed")
	}
}

func TestRepeatLine(t *testing.T) {
	l := lineOfWords([8]uint64{7, 7, 7, 7, 7, 7, 7, 7})
	enc, p, ok := Compress(l, 40)
	if !ok || enc != EncRepeat {
		t.Fatalf("repeat line: enc=%v ok=%v", enc, ok)
	}
	got, _ := Decompress(enc, p)
	if got != l {
		t.Fatal("repeat round trip failed")
	}
}

func TestDeltaWidths(t *testing.T) {
	cases := []struct {
		ws   [8]uint64
		want Encoding
	}{
		{[8]uint64{1000, 1001, 999, 1005, 1000, 990, 1010, 1002}, EncDelta1},
		{[8]uint64{100000, 100200, 99800, 100500, 100000, 99000, 101000, 100002}, EncDelta2},
		{[8]uint64{1 << 40, 1<<40 + 1e6, 1<<40 - 1e6, 1 << 40, 1 << 40, 1 << 40, 1 << 40, 1 << 40}, EncDelta4},
	}
	for _, c := range cases {
		l := lineOfWords(c.ws)
		enc, p, ok := Compress(l, 40)
		if !ok || enc != c.want {
			t.Fatalf("words %v: enc=%v ok=%v, want %v", c.ws, enc, ok, c.want)
		}
		got, err := Decompress(enc, p)
		if err != nil || got != l {
			t.Fatalf("%v round trip failed", c.want)
		}
	}
}

func TestIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var ws [8]uint64
	for i := range ws {
		ws[i] = rng.Uint64()
	}
	if enc, _, ok := Compress(lineOfWords(ws), 40); ok {
		t.Fatalf("random line compressed as %v", enc)
	}
}

func TestBudgetEnforced(t *testing.T) {
	l := lineOfWords([8]uint64{1 << 40, 1<<40 + 1e6, 1 << 40, 1 << 40, 1 << 40, 1 << 40, 1 << 40, 1 << 40})
	// Needs delta4 (40 bytes); a 24-byte budget must refuse it.
	if _, _, ok := Compress(l, 24); ok {
		t.Fatal("over-budget block accepted")
	}
	if _, _, ok := Compress(l, 40); !ok {
		t.Fatal("in-budget block refused")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(ws [8]uint64, nearBase uint8) bool {
		// Mix of totally random and near-base lines to exercise all
		// encoders.
		if nearBase%2 == 0 {
			base := ws[0]
			for i := 1; i < 8; i++ {
				ws[i] = base + uint64(int64(int8(ws[i])))
			}
		}
		l := lineOfWords(ws)
		enc, p, ok := Compress(l, 40)
		if !ok {
			return true // raw: nothing to verify
		}
		got, err := Decompress(enc, p)
		return err == nil && got == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPayloadSizes(t *testing.T) {
	want := map[Encoding]int{EncZero: 0, EncRepeat: 8, EncDelta1: 16, EncDelta2: 24, EncDelta4: 40, EncRaw: 64}
	for e, n := range want {
		if e.PayloadSize() != n {
			t.Errorf("%v payload = %d, want %d", e, e.PayloadSize(), n)
		}
	}
}

func TestDecompressErrors(t *testing.T) {
	if _, err := Decompress(EncRaw, nil); err == nil {
		t.Fatal("raw decompress accepted")
	}
	if _, err := Decompress(EncRepeat, []byte{1}); err == nil {
		t.Fatal("short repeat payload accepted")
	}
	if _, err := Decompress(EncDelta2, make([]byte, 10)); err == nil {
		t.Fatal("short delta payload accepted")
	}
}
