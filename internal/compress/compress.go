// Package compress implements base-delta-immediate (BDI) cache-line
// compression [Pekhimenko et al., PACT'12], the mechanism the Arsenal
// secure-NVM baseline [Swami & Mohanram, IEEE CAL'18] relies on: if a
// 64 B block compresses enough to leave room for its encryption counter
// and data HMAC, all three ride in one NVM line and reach memory
// atomically — crash consistency without any extra writes.
//
// The encoder tries, in order: all-zero, repeated 8-byte value, and
// base(8 B)+delta with delta widths 1, 2 and 4. The decoder inverts
// exactly; Compress/Decompress round-trip losslessly or report
// incompressible.
package compress

import (
	"encoding/binary"
	"fmt"

	"ccnvm/internal/mem"
)

// Encoding identifies how a block was packed.
type Encoding byte

// Encodings, in the order the encoder attempts them.
const (
	EncZero   Encoding = iota // all bytes zero: 0 payload bytes
	EncRepeat                 // one repeated 8-byte word: 8 payload bytes
	EncDelta1                 // 8-byte base + 8x1-byte deltas: 16 bytes
	EncDelta2                 // 8-byte base + 8x2-byte deltas: 24 bytes
	EncDelta4                 // 8-byte base + 8x4-byte deltas: 40 bytes
	EncRaw                    // incompressible
)

// String implements fmt.Stringer.
func (e Encoding) String() string {
	switch e {
	case EncZero:
		return "zero"
	case EncRepeat:
		return "repeat"
	case EncDelta1:
		return "base+delta1"
	case EncDelta2:
		return "base+delta2"
	case EncDelta4:
		return "base+delta4"
	case EncRaw:
		return "raw"
	default:
		return "?"
	}
}

// PayloadSize returns the compressed payload size in bytes, or 64 for
// raw.
func (e Encoding) PayloadSize() int {
	switch e {
	case EncZero:
		return 0
	case EncRepeat:
		return 8
	case EncDelta1:
		return 16
	case EncDelta2:
		return 24
	case EncDelta4:
		return 40
	default:
		return mem.LineSize
	}
}

func words(l mem.Line) [8]uint64 {
	var w [8]uint64
	for i := range w {
		w[i] = binary.LittleEndian.Uint64(l[i*8 : i*8+8])
	}
	return w
}

// Compress packs l into at most budget bytes. It returns the encoding,
// the payload (nil for EncZero), and whether the block fit.
func Compress(l mem.Line, budget int) (Encoding, []byte, bool) {
	w := words(l)
	allZero, allSame := true, true
	for _, v := range w {
		if v != 0 {
			allZero = false
		}
		if v != w[0] {
			allSame = false
		}
	}
	if allZero && EncZero.PayloadSize() <= budget {
		return EncZero, nil, true
	}
	if allSame && EncRepeat.PayloadSize() <= budget {
		p := make([]byte, 8)
		binary.LittleEndian.PutUint64(p, w[0])
		return EncRepeat, p, true
	}
	base := w[0]
	fits := func(width uint) bool {
		limit := uint64(1)<<(8*width-1) - 1
		for _, v := range w {
			d := int64(v - base)
			if d > int64(limit) || d < -int64(limit)-1 {
				return false
			}
		}
		return true
	}
	pack := func(enc Encoding, width int) (Encoding, []byte, bool) {
		if enc.PayloadSize() > budget {
			return EncRaw, nil, false
		}
		p := make([]byte, 8+8*width)
		binary.LittleEndian.PutUint64(p[:8], base)
		for i, v := range w {
			d := uint64(v - base)
			for b := 0; b < width; b++ {
				p[8+i*width+b] = byte(d >> (8 * b))
			}
		}
		return enc, p, true
	}
	if fits(1) {
		if e, p, ok := pack(EncDelta1, 1); ok {
			return e, p, true
		}
	}
	if fits(2) {
		if e, p, ok := pack(EncDelta2, 2); ok {
			return e, p, true
		}
	}
	if fits(4) {
		if e, p, ok := pack(EncDelta4, 4); ok {
			return e, p, true
		}
	}
	return EncRaw, nil, false
}

// Decompress inverts Compress.
func Decompress(enc Encoding, payload []byte) (mem.Line, error) {
	var l mem.Line
	put := func(i int, v uint64) { binary.LittleEndian.PutUint64(l[i*8:i*8+8], v) }
	switch enc {
	case EncZero:
		return l, nil
	case EncRepeat:
		if len(payload) < 8 {
			return l, fmt.Errorf("compress: repeat payload too short: %d", len(payload))
		}
		v := binary.LittleEndian.Uint64(payload[:8])
		for i := 0; i < 8; i++ {
			put(i, v)
		}
		return l, nil
	case EncDelta1, EncDelta2, EncDelta4:
		width := map[Encoding]int{EncDelta1: 1, EncDelta2: 2, EncDelta4: 4}[enc]
		if len(payload) < 8+8*width {
			return l, fmt.Errorf("compress: delta payload too short: %d", len(payload))
		}
		base := binary.LittleEndian.Uint64(payload[:8])
		for i := 0; i < 8; i++ {
			var d uint64
			for b := 0; b < width; b++ {
				d |= uint64(payload[8+i*width+b]) << (8 * b)
			}
			// Sign-extend the delta.
			shift := uint(64 - 8*width)
			sd := int64(d<<shift) >> shift
			put(i, base+uint64(sd))
		}
		return l, nil
	default:
		return l, fmt.Errorf("compress: cannot decompress encoding %v", enc)
	}
}
