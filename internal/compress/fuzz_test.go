package compress

import (
	"testing"

	"ccnvm/internal/mem"
)

// FuzzCompressRoundTrip: any line the encoder accepts must decompress
// to exactly the original bytes, and the decoder must never panic on
// arbitrary payloads.
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add(make([]byte, mem.LineSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		var l mem.Line
		copy(l[:], data)
		enc, payload, ok := Compress(l, 40)
		if ok {
			got, err := Decompress(enc, payload)
			if err != nil || got != l {
				t.Fatalf("round trip failed for %v", enc)
			}
		}
		// Decoder robustness on raw fuzz bytes.
		for e := EncZero; e <= EncRaw; e++ {
			_, _ = Decompress(e, data)
		}
	})
}
