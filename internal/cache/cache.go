// Package cache implements the set-associative write-back caches used
// throughout the simulated hierarchy: the L1 and L2 data caches and the
// on-chip metadata cache (counter cache + Merkle-tree cache). All are
// 64 B-line, LRU-replacement, write-allocate caches, as in the paper's
// configuration.
//
// The cache is purely a state machine: it tracks presence, dirtiness and
// recency and reports hits, misses and evictions. Latency is charged by
// the caller (the simulator), which keeps one implementation reusable
// for every cache level.
package cache

import (
	"fmt"
	"math/bits"

	"ccnvm/internal/mem"
)

// Stats accumulates cache events. Counters are plain uint64s read at end
// of simulation.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Evictions   uint64 // total lines displaced
	DirtyEvicts uint64 // displaced lines that were dirty (write-backs)
	Writes      uint64 // stores / line updates
	Reads       uint64
}

// HitRatio returns hits/(hits+misses), or 0 for an untouched cache.
func (s *Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type way struct {
	tag   uint64
	data  mem.Line
	valid bool
	dirty bool
	lru   uint64 // higher = more recently used
}

// Cache is one set-associative write-back cache. Create with New; the
// zero value is not usable.
type Cache struct {
	name     string
	sets     uint64
	ways     int
	lines    []way // sets × ways, row-major
	tick     uint64
	stats    Stats
	onEvict  func(addr mem.Addr, line mem.Line, dirty bool)
	setShift uint
}

// Config describes a cache. SizeBytes must be ways × power-of-two × 64.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
}

// New builds a cache. OnEvict, if non-nil, is invoked for every line
// displaced by a fill or invalidated by Flush, with its dirtiness; the
// owner uses it to propagate write-backs down the hierarchy.
func New(cfg Config, onEvict func(addr mem.Addr, line mem.Line, dirty bool)) (*Cache, error) {
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache %s: ways must be positive, got %d", cfg.Name, cfg.Ways)
	}
	lineCount := cfg.SizeBytes / mem.LineSize
	if lineCount <= 0 || lineCount%cfg.Ways != 0 {
		return nil, fmt.Errorf("cache %s: size %d not divisible into %d ways of 64 B lines", cfg.Name, cfg.SizeBytes, cfg.Ways)
	}
	sets := uint64(lineCount / cfg.Ways)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d is not a power of two", cfg.Name, sets)
	}
	return &Cache{
		name:     cfg.Name,
		sets:     sets,
		ways:     cfg.Ways,
		lines:    make([]way, lineCount),
		onEvict:  onEvict,
		setShift: uint(bits.TrailingZeros64(uint64(mem.LineSize))),
	}, nil
}

// MustNew is New with panic-on-error, for fixed configurations.
func MustNew(cfg Config, onEvict func(addr mem.Addr, line mem.Line, dirty bool)) *Cache {
	c, err := New(cfg, onEvict)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *Cache) locate(a mem.Addr) (setBase int, tag uint64) {
	blk := uint64(a) >> c.setShift
	set := blk & (c.sets - 1)
	return int(set) * c.ways, blk / c.sets
}

func (c *Cache) find(a mem.Addr) *way {
	base, tag := c.locate(a)
	for i := 0; i < c.ways; i++ {
		w := &c.lines[base+i]
		if w.valid && w.tag == tag {
			return w
		}
	}
	return nil
}

// Contains reports whether a is cached, without touching LRU state or
// statistics. The drainer uses it to probe for cached ancestors.
func (c *Cache) Contains(a mem.Addr) bool { return c.find(mem.Align(a)) != nil }

// IsDirty reports whether a is cached and dirty, without touching LRU
// state or statistics.
func (c *Cache) IsDirty(a mem.Addr) bool {
	w := c.find(mem.Align(a))
	return w != nil && w.dirty
}

// Read looks up a. On a hit it returns the line and true. On a miss it
// returns false; the caller fetches the line from below and calls Fill.
func (c *Cache) Read(a mem.Addr) (mem.Line, bool) {
	a = mem.Align(a)
	c.stats.Reads++
	if w := c.find(a); w != nil {
		c.stats.Hits++
		c.touch(w)
		return w.data, true
	}
	c.stats.Misses++
	return mem.Line{}, false
}

// Write updates a cached line, marking it dirty. It returns false on a
// miss (write-allocate: the caller fills first, then writes).
func (c *Cache) Write(a mem.Addr, l mem.Line) bool {
	a = mem.Align(a)
	c.stats.Writes++
	if w := c.find(a); w != nil {
		c.stats.Hits++
		w.data = l
		w.dirty = true
		c.touch(w)
		return true
	}
	c.stats.Misses++
	return false
}

// Fill inserts line l for address a (after a miss was serviced from
// below), evicting the LRU way of the set if needed. dirty seeds the
// line's dirty bit: false for demand fills, true when installing a
// freshly written line. It returns the evicted victim, if any, via the
// OnEvict callback.
func (c *Cache) Fill(a mem.Addr, l mem.Line, dirty bool) {
	a = mem.Align(a)
	if w := c.find(a); w != nil {
		// Already present (e.g. racing fill): update in place.
		w.data = l
		w.dirty = w.dirty || dirty
		c.touch(w)
		return
	}
	base, tag := c.locate(a)
	victim := &c.lines[base]
	for i := 1; i < c.ways; i++ {
		w := &c.lines[base+i]
		if !w.valid {
			victim = w
			break
		}
		if victim.valid && w.lru < victim.lru {
			victim = w
		}
	}
	if victim.valid {
		c.stats.Evictions++
		if victim.dirty {
			c.stats.DirtyEvicts++
		}
		if c.onEvict != nil {
			c.onEvict(c.addrAt(victim, base/c.ways), victim.data, victim.dirty)
		}
	}
	victim.tag = tag
	victim.data = l
	victim.valid = true
	victim.dirty = dirty
	c.touch(victim)
}

// addrAt reconstructs the address of the occupied way w living in set.
func (c *Cache) addrAt(w *way, set int) mem.Addr {
	return mem.Addr((w.tag*c.sets + uint64(set)) << c.setShift)
}

func (c *Cache) touch(w *way) {
	c.tick++
	w.lru = c.tick
}

// CleanLine clears the dirty bit of a cached line without evicting it,
// modelling a write-back that leaves the line resident (as the drainer
// does when it flushes dirty metadata to the WPQ).
func (c *Cache) CleanLine(a mem.Addr) {
	if w := c.find(mem.Align(a)); w != nil {
		w.dirty = false
	}
}

// Peek returns a cached line's content without touching LRU state or
// statistics.
func (c *Cache) Peek(a mem.Addr) (mem.Line, bool) {
	if w := c.find(mem.Align(a)); w != nil {
		return w.data, true
	}
	return mem.Line{}, false
}

// DropAll silently invalidates every line without invoking OnEvict:
// power-failure semantics for volatile caches.
func (c *Cache) DropAll() {
	for i := range c.lines {
		c.lines[i].valid = false
	}
}

// Invalidate drops a line without invoking OnEvict, returning its
// content and dirtiness if it was present. Crash modelling uses it to
// lose cached state.
func (c *Cache) Invalidate(a mem.Addr) (mem.Line, bool, bool) {
	if w := c.find(mem.Align(a)); w != nil {
		w.valid = false
		return w.data, w.dirty, true
	}
	return mem.Line{}, false, false
}

// FlushAll evicts every valid line through OnEvict (dirty or clean) and
// empties the cache. Used at end of simulation to settle state.
func (c *Cache) FlushAll() {
	for i := range c.lines {
		w := &c.lines[i]
		if !w.valid {
			continue
		}
		c.stats.Evictions++
		if w.dirty {
			c.stats.DirtyEvicts++
		}
		if c.onEvict != nil {
			c.onEvict(c.addrAt(w, i/c.ways), w.data, w.dirty)
		}
		w.valid = false
	}
}

// DirtyAddrs returns the addresses of all dirty lines, ascending.
func (c *Cache) DirtyAddrs() []mem.Addr {
	var out []mem.Addr
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			out = append(out, c.addrAt(&c.lines[i], i/c.ways))
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Name returns the configured cache name.
func (c *Cache) Name() string { return c.name }

// Len reports the number of valid lines.
func (c *Cache) Len() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}
