package cache

import (
	"math/rand"
	"testing"

	"ccnvm/internal/mem"
)

func line(b byte) mem.Line {
	var l mem.Line
	l[0] = b
	return l
}

func small(t testing.TB, onEvict func(mem.Addr, mem.Line, bool)) *Cache {
	t.Helper()
	// 4 sets × 2 ways × 64 B = 512 B.
	c, err := New(Config{Name: "t", SizeBytes: 512, Ways: 2}, onEvict)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Name: "zero", SizeBytes: 0, Ways: 2},
		{Name: "noways", SizeBytes: 512, Ways: 0},
		{Name: "negways", SizeBytes: 512, Ways: -1},
		{Name: "indivisible", SizeBytes: 512, Ways: 3},
		{Name: "nonpow2sets", SizeBytes: 3 * 128, Ways: 2},
	}
	for _, cfg := range bad {
		if _, err := New(cfg, nil); err == nil {
			t.Errorf("config %q accepted, want error", cfg.Name)
		}
	}
}

func TestReadMissThenFillHit(t *testing.T) {
	c := small(t, nil)
	if _, hit := c.Read(0); hit {
		t.Fatal("hit in empty cache")
	}
	c.Fill(0, line(7), false)
	got, hit := c.Read(0)
	if !hit || got != line(7) {
		t.Fatal("fill did not install line")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 miss", st)
	}
}

func TestWriteAllocateSemantics(t *testing.T) {
	c := small(t, nil)
	if c.Write(64, line(1)) {
		t.Fatal("write hit in empty cache")
	}
	c.Fill(64, line(0), false)
	if !c.Write(64, line(2)) {
		t.Fatal("write missed after fill")
	}
	if !c.IsDirty(64) {
		t.Fatal("written line not dirty")
	}
	got, _ := c.Read(64)
	if got != line(2) {
		t.Fatal("write content lost")
	}
}

func TestLRUEviction(t *testing.T) {
	var evicted []mem.Addr
	c := small(t, func(a mem.Addr, _ mem.Line, _ bool) { evicted = append(evicted, a) })
	// Set stride: 4 sets => addresses 0, 256, 512 share set 0.
	c.Fill(0, line(1), false)
	c.Fill(256, line(2), false)
	c.Read(0) // make 0 MRU; 256 becomes LRU
	c.Fill(512, line(3), false)
	if len(evicted) != 1 || evicted[0] != 256 {
		t.Fatalf("evicted %v, want [256]", evicted)
	}
	if !c.Contains(0) || !c.Contains(512) || c.Contains(256) {
		t.Fatal("wrong resident set after eviction")
	}
}

func TestDirtyEvictionCarriesData(t *testing.T) {
	type ev struct {
		a     mem.Addr
		l     mem.Line
		dirty bool
	}
	var evs []ev
	c := small(t, func(a mem.Addr, l mem.Line, d bool) { evs = append(evs, ev{a, l, d}) })
	c.Fill(0, line(0), false)
	c.Write(0, line(9))
	c.Fill(256, line(1), false)
	c.Fill(512, line(2), false) // evicts LRU = 0 (dirty)
	if len(evs) != 1 {
		t.Fatalf("got %d evictions, want 1", len(evs))
	}
	if evs[0].a != 0 || !evs[0].dirty || evs[0].l != line(9) {
		t.Fatalf("eviction = %+v, want dirty line(9) at 0", evs[0])
	}
	if got := c.Stats().DirtyEvicts; got != 1 {
		t.Fatalf("DirtyEvicts = %d, want 1", got)
	}
}

func TestFillDirtySeedsDirtyBit(t *testing.T) {
	c := small(t, nil)
	c.Fill(0, line(1), true)
	if !c.IsDirty(0) {
		t.Fatal("dirty fill left line clean")
	}
}

func TestFillExistingMergesDirty(t *testing.T) {
	c := small(t, nil)
	c.Fill(0, line(1), true)
	c.Fill(0, line(2), false)
	if !c.IsDirty(0) {
		t.Fatal("re-fill cleared dirty bit")
	}
	got, _ := c.Read(0)
	if got != line(2) {
		t.Fatal("re-fill did not update content")
	}
}

func TestCleanLine(t *testing.T) {
	c := small(t, nil)
	c.Fill(0, line(1), true)
	c.CleanLine(0)
	if c.IsDirty(0) {
		t.Fatal("CleanLine left line dirty")
	}
	if !c.Contains(0) {
		t.Fatal("CleanLine evicted the line")
	}
}

func TestInvalidateLosesLineSilently(t *testing.T) {
	evicts := 0
	c := small(t, func(mem.Addr, mem.Line, bool) { evicts++ })
	c.Fill(0, line(1), true)
	l, dirty, ok := c.Invalidate(0)
	if !ok || !dirty || l != line(1) {
		t.Fatal("Invalidate returned wrong state")
	}
	if c.Contains(0) {
		t.Fatal("line survived Invalidate")
	}
	if evicts != 0 {
		t.Fatal("Invalidate invoked OnEvict")
	}
}

func TestFlushAllEmitsEverything(t *testing.T) {
	var addrs []mem.Addr
	c := small(t, func(a mem.Addr, _ mem.Line, _ bool) { addrs = append(addrs, a) })
	c.Fill(0, line(1), true)
	c.Fill(64, line(2), false)
	c.FlushAll()
	if len(addrs) != 2 {
		t.Fatalf("flushed %d lines, want 2", len(addrs))
	}
	if c.Len() != 0 {
		t.Fatal("cache not empty after FlushAll")
	}
}

func TestDirtyAddrsSortedAndComplete(t *testing.T) {
	c := small(t, nil)
	for _, a := range []mem.Addr{512, 0, 320, 64} {
		c.Fill(a, line(1), true)
	}
	c.Fill(128, line(1), false)
	d := c.DirtyAddrs()
	want := []mem.Addr{0, 64, 320, 512}
	if len(d) != len(want) {
		t.Fatalf("DirtyAddrs = %v, want %v", d, want)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("DirtyAddrs = %v, want %v", d, want)
		}
	}
}

func TestAddressReconstruction(t *testing.T) {
	// Evicted addresses must be exactly the addresses filled, across the
	// whole index range (catches addrAt bugs).
	seen := map[mem.Addr]bool{}
	c := MustNew(Config{Name: "recon", SizeBytes: 4096, Ways: 4}, func(a mem.Addr, _ mem.Line, _ bool) { seen[a] = true })
	filled := map[mem.Addr]bool{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := mem.Addr(rng.Intn(1<<16)) &^ 63
		filled[a] = true
		c.Fill(a, line(byte(a)), false)
	}
	c.FlushAll()
	for a := range seen {
		if !filled[a] {
			t.Fatalf("evicted address %#x was never filled", uint64(a))
		}
	}
}

func TestHitRatio(t *testing.T) {
	c := small(t, nil)
	c.Fill(0, line(1), false)
	c.Read(0)
	c.Read(64)
	st := c.Stats()
	if r := st.HitRatio(); r != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5", r)
	}
	var empty Stats
	if empty.HitRatio() != 0 {
		t.Fatal("empty stats hit ratio should be 0")
	}
}

func TestUnalignedAddressesNormalize(t *testing.T) {
	c := small(t, nil)
	c.Fill(3, line(1), false)
	if _, hit := c.Read(0); !hit {
		t.Fatal("unaligned fill not visible at aligned address")
	}
	if !c.Contains(63) {
		t.Fatal("Contains not alignment-normalized")
	}
}
