package nvm

import (
	"fmt"

	"ccnvm/internal/mem"
)

// FaultModel configures deterministic, seed-driven media faults on a
// Device. A nil model (the default) is the idealized device every prior
// result was measured on: writes are atomic at line granularity, the ADR
// flush always completes, and reads never fail. All fault machinery is
// strictly gated on the model being non-nil, so behaviour and stats stay
// bit-identical when faults are off.
//
// The model covers the three fault classes real NVM crashes exhibit:
//
//   - Torn writes: power fails while a WPQ entry is being written; each
//     of the line's eight 8-byte words (the store-atomicity granule)
//     independently holds either the old or the new value.
//   - Partial ADR drain: the backup-power energy budget covers only the
//     first ADRBudget serviceable WPQ entries; later entries tear or
//     drop whole.
//   - Read errors: a written line may be weak (transient read errors
//     healed by controller retry and scrubbing) or become stuck at power
//     loss (permanent read errors until the line is rewritten, modeling
//     a remap to a spare).
//
// Every decision is a pure function of (Seed, address, wear), so a cell
// replays identically under the torture harness and shrinker.
type FaultModel struct {
	// Seed drives every fault decision; two devices with equal seeds and
	// equal histories fail identically.
	Seed int64

	// TornWrites selects how WPQ entries beyond the ADR budget (and held
	// epoch entries that never saw the end signal) fail: torn at 8-byte
	// word granularity instead of dropped whole.
	TornWrites bool

	// ADRBudget bounds how many serviceable WPQ entries the ADR flush
	// energy covers at power failure, oldest first. 0 means unbounded
	// (the baseline ADR guarantee).
	ADRBudget int

	// WeakLineRate is the probability (0..1) that a written line's
	// current cell state is weak: reads fail transiently (one or two
	// attempts) until the line is rewritten.
	WeakLineRate float64

	// StuckLines is how many written lines become permanently unreadable
	// at each power failure (picked deterministically from the written
	// set). A subsequent write heals the line (remap to a spare).
	StuckLines int

	// SpareLines sizes the device's finite spare-line pool. 0 (the
	// default) is the historical unlimited pool: stuck lines heal on
	// rewrite and scrub give-ups are exempted without accounting, so
	// every prior result stays bit-identical. A positive value arms real
	// media management: each heal or exemption consumes one spare from a
	// crash-consistent remap table, and when the pool empties the
	// controller degrades to read-only instead of healing forever.
	// Capped at RemapMaxEntries, the remap record's capacity.
	SpareLines int
}

// Salts separate the fault model's decision streams.
const (
	saltWeak  = 0x11
	saltFails = 0x22
	saltTear  = 0x33
	saltStuck = 0x44
)

// Enabled reports whether the model can produce any fault at all.
func (m *FaultModel) Enabled() bool {
	return m != nil && (m.TornWrites || m.ADRBudget > 0 || m.WeakLineRate > 0 || m.StuckLines > 0 || m.SpareLines > 0)
}

// CrashAffectsWPQ reports whether a power failure can damage WPQ
// entries, i.e. whether the controller must track in-flight writes.
func (m *FaultModel) CrashAffectsWPQ() bool {
	return m != nil && (m.TornWrites || m.ADRBudget > 0)
}

// hash mixes the seed with the given values into one 64-bit decision.
func (m *FaultModel) hash(vals ...uint64) uint64 {
	h := uint64(m.Seed) ^ 0x9e3779b97f4a7c15
	for _, v := range vals {
		h = mem.Mix64(h ^ v)
	}
	return h
}

// lineWeak decides whether the cell state written at the given wear
// level of address a is weak. Rewriting the line bumps wear and re-rolls
// the decision, which is what makes scrubbing converge.
func (m *FaultModel) lineWeak(a mem.Addr, wear uint64) bool {
	if m.WeakLineRate <= 0 {
		return false
	}
	h := m.hash(uint64(a), wear, saltWeak)
	return float64(h>>11)/float64(1<<53) < m.WeakLineRate
}

// failCount is how many consecutive read attempts of a weak line fail
// before one succeeds: one or two, per the transient-error model.
func (m *FaultModel) failCount(a mem.Addr, wear uint64) int {
	return 1 + int(m.hash(uint64(a), wear, saltFails)&1)
}

// TearMask decides the fate of a WPQ entry the ADR flush could not
// cover: the returned mask has bit i set when 8-byte word i of the new
// content reached the media. Mask 0 is a whole drop; when TornWrites is
// off the entry always drops whole. seq disambiguates entries to the
// same address.
func (m *FaultModel) TearMask(a mem.Addr, seq uint64) byte {
	if !m.TornWrites {
		return 0
	}
	h := m.hash(uint64(a), seq, saltTear)
	if h%4 == 0 {
		return 0 // power died before the first word
	}
	return byte(h >> 8)
}

// MixWords composes a torn line: word i (8 bytes) comes from new when
// bit i of mask is set, else from old.
func MixWords(old, new mem.Line, mask byte) mem.Line {
	out := old
	for w := 0; w < 8; w++ {
		if mask&(1<<w) != 0 {
			copy(out[w*8:w*8+8], new[w*8:w*8+8])
		}
	}
	return out
}

// FaultEvent records one line a power failure damaged under the fault
// model — the harness's ground truth for the healing oracles.
type FaultEvent struct {
	Addr mem.Addr `json:"addr"`
	// Kind is "torn" (some words of the new content persisted),
	// "dropped" (no word persisted; the line kept its prior content) or
	// "stuck" (the line became permanently unreadable).
	Kind string `json:"kind"`
	// Mask is the persisted-word mask for torn entries.
	Mask byte `json:"mask,omitempty"`
	// Held marks entries that were held for an atomic epoch drain (and
	// would have been dropped whole even on the idealized device).
	Held bool `json:"held,omitempty"`
}

// FaultLog is the ground-truth record of what one power failure did
// under the fault model. Only Suspects is architecturally visible:
// a real controller persists that tiny manifest (line addresses only)
// first, before spending flush energy on data, so recovery may use it to
// attribute authentication failures to crash damage instead of
// tampering. Events and Flushed exist for the torture oracles and
// diagnostics; recovery must never read them.
type FaultLog struct {
	Suspects []mem.Addr   `json:"suspects"`
	Events   []FaultEvent `json:"events"`
	Flushed  int          `json:"flushed"` // serviceable entries fully flushed
}

// AddrRangeError reports a write outside the device address space: a
// malformed address escaped the layout. It is a typed error (not a
// panic) so fuzzed and torture paths surface it as a cell failure.
type AddrRangeError struct {
	Addr mem.Addr
}

func (e *AddrRangeError) Error() string {
	return fmt.Sprintf("nvm: write outside address space: %#x", uint64(e.Addr))
}

// SpareExhaustedError reports that the finite spare pool is empty: a
// line could not be remapped, or (Addr zero) the controller refused to
// open a new epoch because the media is in read-only degradation. It is
// typed so callers can tell graceful capacity exhaustion apart from
// protocol errors.
type SpareExhaustedError struct {
	Total int      // pool size the device was provisioned with
	Addr  mem.Addr // line whose remap was refused; 0 for an epoch refusal
}

func (e *SpareExhaustedError) Error() string {
	if e.Addr != 0 {
		return fmt.Sprintf("nvm: spare pool exhausted (%d lines): cannot remap %#x", e.Total, uint64(e.Addr))
	}
	return fmt.Sprintf("nvm: spare pool exhausted (%d lines): media is read-only", e.Total)
}

// ReadError reports a media read failure the controller could not hide.
type ReadError struct {
	Addr      mem.Addr
	Transient bool // true for weak-line errors, false for stuck lines
}

func (e *ReadError) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("nvm: %s read error at %#x", kind, uint64(e.Addr))
}
