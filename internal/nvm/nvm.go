// Package nvm models the non-volatile main memory device: a sparse
// byte-addressable PCM DIMM with the paper's read/write latencies,
// per-region access accounting and per-line write-endurance counters.
//
// The device is purely functional plus bookkeeping; service timing
// (banks, queues, the write-pending queue and ADR semantics) lives in
// package memctrl, which owns a Device.
package nvm

import (
	"fmt"
	"slices"

	"ccnvm/internal/mem"
)

// Timing holds the device latencies in cycles. The paper models PCM at
// 60 ns reads and 150 ns writes on a 3 GHz core: 180 and 450 cycles.
type Timing struct {
	ReadCycles  int64
	WriteCycles int64
}

// PCMTiming returns the paper's PCM timing at a given core clock in GHz.
func PCMTiming(clockGHz float64) Timing {
	return Timing{
		ReadCycles:  int64(60 * clockGHz),
		WriteCycles: int64(150 * clockGHz),
	}
}

// WriteBreakdown counts NVM line writes by address region. This is the
// quantity Figure 5(b) plots.
type WriteBreakdown struct {
	Data    uint64
	HMAC    uint64
	Counter uint64
	Tree    uint64
}

// Total sums all regions.
func (w WriteBreakdown) Total() uint64 { return w.Data + w.HMAC + w.Counter + w.Tree }

// Add accumulates o into w.
func (w *WriteBreakdown) Add(o WriteBreakdown) {
	w.Data += o.Data
	w.HMAC += o.HMAC
	w.Counter += o.Counter
	w.Tree += o.Tree
}

// String renders the breakdown compactly.
func (w WriteBreakdown) String() string {
	return fmt.Sprintf("writes{data=%d hmac=%d ctr=%d tree=%d total=%d}",
		w.Data, w.HMAC, w.Counter, w.Tree, w.Total())
}

// Device is the NVM DIMM. Create with NewDevice.
type Device struct {
	layout *mem.Layout
	timing Timing
	store  mem.Store
	wear   map[mem.Addr]uint64

	writes WriteBreakdown
	reads  uint64

	// Media fault state; all nil/empty on the idealized device.
	faults     *FaultModel
	stuck      map[mem.Addr]bool // permanently unreadable until rewritten
	weakExempt map[mem.Addr]bool // chronically weak lines remapped by scrubbing

	// Finite spare-pool state (see spare.go); all zero/nil on the
	// unlimited legacy pool (FaultModel.SpareLines == 0).
	spareTotal      int
	spareUsed       int
	remapEntries    []RemapEntry
	remapIdx        map[mem.Addr]int
	remapSeq        uint64
	remapsBoot      uint64
	remapRefused    uint64
	remapTable      []byte
	remapPrev       []byte // prior bytes of the most recently written slot
	dropRemapCommit bool   // torture sabotage: drop record writes
}

// NewDevice builds a device over the given layout and timing.
func NewDevice(layout *mem.Layout, timing Timing) *Device {
	return &Device{layout: layout, timing: timing, wear: make(map[mem.Addr]uint64)}
}

// Layout returns the device's address-space layout.
func (d *Device) Layout() *mem.Layout { return d.layout }

// SetFaultModel installs (or, with nil, removes) the media fault model.
// Install it before issuing traffic: weak-line decisions depend on wear.
func (d *Device) SetFaultModel(m *FaultModel) {
	d.faults = m
	if m != nil {
		if d.stuck == nil {
			d.stuck = make(map[mem.Addr]bool)
		}
		if d.weakExempt == nil {
			d.weakExempt = make(map[mem.Addr]bool)
		}
		if m.SpareLines > 0 {
			d.initSparePool(m.SpareLines)
		}
	}
}

// FaultModel returns the installed fault model (nil on the idealized
// device).
func (d *Device) FaultModel() *FaultModel { return d.faults }

// Timing returns the device latencies.
func (d *Device) Timing() Timing { return d.timing }

// Read returns the line at a and whether it was ever written. Absent
// lines read as zero ("never written"); the security layer derives
// default metadata for them.
func (d *Device) Read(a mem.Addr) (mem.Line, bool) {
	d.reads++
	return d.store.Read(a)
}

// Peek reads without counting an access; recovery and tests use it.
func (d *Device) Peek(a mem.Addr) (mem.Line, bool) { return d.store.Read(a) }

// Write persists line l at a, counting the write against its region and
// the line's wear counter. Writing heals a stuck line (the device remaps
// it to a spare). An out-of-range address returns *AddrRangeError.
func (d *Device) Write(a mem.Addr, l mem.Line) error {
	a = mem.Align(a)
	switch d.layout.RegionOf(a) {
	case mem.RegionData:
		d.writes.Data++
	case mem.RegionHMAC:
		d.writes.HMAC++
	case mem.RegionCounter:
		d.writes.Counter++
	case mem.RegionTree:
		d.writes.Tree++
	default:
		return &AddrRangeError{Addr: a}
	}
	d.wear[a]++
	d.healOnWrite(a)
	d.store.Write(a, l)
	return nil
}

// WriteBatch persists lines[i] at addrs[i] for every i, equivalent to
// calling Write in index order; the returned errors are the failures in
// that order (entries after a failing one are still applied, as in a
// serial loop). Accounting — region counters, wear, stuck-line healing
// — stays serial; only the store inserts fan out across up to workers
// goroutines, which is safe because the store partitions them by
// internal shard. The epoch drainer uses this to service a whole held
// batch at the end-of-drain commit point.
func (d *Device) WriteBatch(addrs []mem.Addr, lines []mem.Line, workers int) []error {
	var errs []error
	okAddrs := addrs[:0:0]
	okLines := lines[:0:0]
	for i, a := range addrs {
		a = mem.Align(a)
		switch d.layout.RegionOf(a) {
		case mem.RegionData:
			d.writes.Data++
		case mem.RegionHMAC:
			d.writes.HMAC++
		case mem.RegionCounter:
			d.writes.Counter++
		case mem.RegionTree:
			d.writes.Tree++
		default:
			errs = append(errs, &AddrRangeError{Addr: a})
			continue
		}
		d.wear[a]++
		d.healOnWrite(a)
		okAddrs = append(okAddrs, a)
		okLines = append(okLines, lines[i])
	}
	d.store.WriteBatch(okAddrs, okLines, workers)
	return errs
}

// ReadFails reports whether the given read attempt (0-based) of line a
// fails under the fault model: always for a stuck line, for the first
// one or two attempts of a weak line. The idealized device never fails.
func (d *Device) ReadFails(a mem.Addr, attempt int) bool {
	if d.faults == nil {
		return false
	}
	a = mem.Align(a)
	if d.stuck[a] {
		return true
	}
	if d.faults.WeakLineRate <= 0 || d.weakExempt[a] {
		return false
	}
	if _, ok := d.store.Read(a); !ok {
		return false // never-written cells have no weak state
	}
	if !d.faults.lineWeak(a, d.wear[a]) {
		return false
	}
	return attempt < d.faults.failCount(a, d.wear[a])
}

// LineWeak reports whether a's current cell state is weak (scrubbing
// targets these).
func (d *Device) LineWeak(a mem.Addr) bool {
	if d.faults == nil || d.weakExempt[a] || d.stuck[a] {
		return false
	}
	a = mem.Align(a)
	if _, ok := d.store.Read(a); !ok {
		return false
	}
	return d.faults.lineWeak(a, d.wear[a])
}

// WeakLines lists the currently weak written lines in address order.
func (d *Device) WeakLines() []mem.Addr {
	if d.faults == nil || d.faults.WeakLineRate <= 0 {
		return nil
	}
	var out []mem.Addr
	for _, a := range d.store.Addrs() {
		if d.LineWeak(a) {
			out = append(out, a)
		}
	}
	return out
}

// ExemptLine marks a line as remapped to a spare after scrubbing gave up
// on its cells: it no longer produces weak-line errors. It is the
// legacy spelling of Remap(a, true); on a finite pool an exhausted-pool
// refusal is silent here — callers that must observe it use Remap.
func (d *Device) ExemptLine(a mem.Addr) {
	_ = d.Remap(a, true)
}

// StuckLines returns the currently stuck lines in address order.
func (d *Device) StuckLines() []mem.Addr {
	out := make([]mem.Addr, 0, len(d.stuck))
	for a := range d.stuck {
		out = append(out, a)
	}
	slices.Sort(out)
	return out
}

// InjectStuckLines applies the fault model's stuck-at failures at a
// power loss: StuckLines distinct written lines, picked deterministically
// from the seed, become permanently unreadable. It returns the newly
// stuck addresses.
func (d *Device) InjectStuckLines() []mem.Addr {
	if d.faults == nil || d.faults.StuckLines <= 0 {
		return nil
	}
	addrs := d.store.Addrs()
	if len(addrs) == 0 {
		return nil
	}
	if d.stuck == nil {
		d.stuck = make(map[mem.Addr]bool)
	}
	var out []mem.Addr
	for i := 0; len(out) < d.faults.StuckLines && i < 4*d.faults.StuckLines+16; i++ {
		a := addrs[int(d.faults.hash(saltStuck, uint64(i))%uint64(len(addrs)))]
		if !d.stuck[a] {
			d.stuck[a] = true
			out = append(out, a)
		}
	}
	slices.Sort(out)
	return out
}

// ApplyCrashFault mutates the persistent content without any access
// accounting: the power-failure fault model tears or reverts lines the
// ADR flush could not cover, which is not a serviced write and must not
// show up in write or wear statistics. present=false removes the line
// (no word of it ever reached the media).
func (d *Device) ApplyCrashFault(a mem.Addr, l mem.Line, present bool) {
	a = mem.Align(a)
	if present {
		d.store.Write(a, l)
	} else {
		d.store.Delete(a)
	}
}

// Writes returns the per-region write counters.
func (d *Device) Writes() WriteBreakdown { return d.writes }

// Reads returns the total line reads.
func (d *Device) Reads() uint64 { return d.reads }

// MaxWear returns the largest per-line write count and the address that
// holds it; NVM lifetime is bounded by the hottest line.
func (d *Device) MaxWear() (mem.Addr, uint64) {
	var ma mem.Addr
	var mx uint64
	for a, w := range d.wear {
		if w > mx || (w == mx && a < ma) {
			ma, mx = a, w
		}
	}
	return ma, mx
}

// Image is a crash snapshot of the persistent state: the NVM contents
// plus nothing else (TCB registers are snapshotted by the engine, which
// owns them). Stuck lists lines whose cells failed permanently at the
// power loss: they hold content but return read errors until rewritten.
type Image struct {
	Layout *mem.Layout
	Store  *mem.Store
	Stuck  map[mem.Addr]bool

	// RemapTable is the persisted two-slot spare remap table; nil on
	// the unlimited legacy pool (see spare.go).
	RemapTable []byte
}

// Snapshot captures the current persistent contents.
func (d *Device) Snapshot() *Image {
	img := &Image{Layout: d.layout, Store: d.store.Clone()}
	if len(d.stuck) > 0 {
		img.Stuck = make(map[mem.Addr]bool, len(d.stuck))
		for a := range d.stuck {
			img.Stuck[a] = true
		}
	}
	if d.spareTotal > 0 {
		img.RemapTable = append([]byte(nil), d.remapTable...)
	}
	return img
}

// Restore replaces the device contents with a snapshot, clearing access
// statistics. Used to reboot a simulated machine from a crash image.
// Wear counters reset with the statistics: the model tracks per-boot
// write pressure, not lifetime endurance (see TestRestoreResetsWear).
func (d *Device) Restore(img *Image) {
	d.store = *img.Store.Clone()
	d.writes = WriteBreakdown{}
	d.reads = 0
	d.wear = make(map[mem.Addr]uint64)
	d.stuck = make(map[mem.Addr]bool)
	for a := range img.Stuck {
		d.stuck[a] = true
	}
	if len(img.RemapTable) > 0 {
		d.restoreSparePool(img.RemapTable)
	}
}

// Read returns the line at a in the image, with never-written handling
// identical to the live device. Stuck lines read as absent: their
// content is unreachable.
func (i *Image) Read(a mem.Addr) (mem.Line, bool) {
	if i.Stuck[a] {
		return mem.Line{}, false
	}
	return i.Store.Read(a)
}

// Write mutates the image in place; attack injection and recovery's
// Apply use it. Writing heals a stuck line, mirroring the device.
func (i *Image) Write(a mem.Addr, l mem.Line) {
	delete(i.Stuck, a)
	i.Store.Write(a, l)
}

// Clone deep-copies the image so attacks can be injected on a copy.
func (i *Image) Clone() *Image {
	cp := &Image{Layout: i.Layout, Store: i.Store.Clone()}
	if len(i.Stuck) > 0 {
		cp.Stuck = make(map[mem.Addr]bool, len(i.Stuck))
		for a := range i.Stuck {
			cp.Stuck[a] = true
		}
	}
	if len(i.RemapTable) > 0 {
		cp.RemapTable = append([]byte(nil), i.RemapTable...)
	}
	return cp
}
