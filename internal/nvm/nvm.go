// Package nvm models the non-volatile main memory device: a sparse
// byte-addressable PCM DIMM with the paper's read/write latencies,
// per-region access accounting and per-line write-endurance counters.
//
// The device is purely functional plus bookkeeping; service timing
// (banks, queues, the write-pending queue and ADR semantics) lives in
// package memctrl, which owns a Device.
package nvm

import (
	"fmt"

	"ccnvm/internal/mem"
)

// Timing holds the device latencies in cycles. The paper models PCM at
// 60 ns reads and 150 ns writes on a 3 GHz core: 180 and 450 cycles.
type Timing struct {
	ReadCycles  int64
	WriteCycles int64
}

// PCMTiming returns the paper's PCM timing at a given core clock in GHz.
func PCMTiming(clockGHz float64) Timing {
	return Timing{
		ReadCycles:  int64(60 * clockGHz),
		WriteCycles: int64(150 * clockGHz),
	}
}

// WriteBreakdown counts NVM line writes by address region. This is the
// quantity Figure 5(b) plots.
type WriteBreakdown struct {
	Data    uint64
	HMAC    uint64
	Counter uint64
	Tree    uint64
}

// Total sums all regions.
func (w WriteBreakdown) Total() uint64 { return w.Data + w.HMAC + w.Counter + w.Tree }

// Add accumulates o into w.
func (w *WriteBreakdown) Add(o WriteBreakdown) {
	w.Data += o.Data
	w.HMAC += o.HMAC
	w.Counter += o.Counter
	w.Tree += o.Tree
}

// String renders the breakdown compactly.
func (w WriteBreakdown) String() string {
	return fmt.Sprintf("writes{data=%d hmac=%d ctr=%d tree=%d total=%d}",
		w.Data, w.HMAC, w.Counter, w.Tree, w.Total())
}

// Device is the NVM DIMM. Create with NewDevice.
type Device struct {
	layout *mem.Layout
	timing Timing
	store  mem.Store
	wear   map[mem.Addr]uint64

	writes WriteBreakdown
	reads  uint64
}

// NewDevice builds a device over the given layout and timing.
func NewDevice(layout *mem.Layout, timing Timing) *Device {
	return &Device{layout: layout, timing: timing, wear: make(map[mem.Addr]uint64)}
}

// Layout returns the device's address-space layout.
func (d *Device) Layout() *mem.Layout { return d.layout }

// Timing returns the device latencies.
func (d *Device) Timing() Timing { return d.timing }

// Read returns the line at a and whether it was ever written. Absent
// lines read as zero ("never written"); the security layer derives
// default metadata for them.
func (d *Device) Read(a mem.Addr) (mem.Line, bool) {
	d.reads++
	return d.store.Read(a)
}

// Peek reads without counting an access; recovery and tests use it.
func (d *Device) Peek(a mem.Addr) (mem.Line, bool) { return d.store.Read(a) }

// Write persists line l at a, counting the write against its region and
// the line's wear counter.
func (d *Device) Write(a mem.Addr, l mem.Line) {
	a = mem.Align(a)
	switch d.layout.RegionOf(a) {
	case mem.RegionData:
		d.writes.Data++
	case mem.RegionHMAC:
		d.writes.HMAC++
	case mem.RegionCounter:
		d.writes.Counter++
	case mem.RegionTree:
		d.writes.Tree++
	default:
		panic(fmt.Sprintf("nvm: write outside address space: %#x", uint64(a)))
	}
	d.wear[a]++
	d.store.Write(a, l)
}

// Writes returns the per-region write counters.
func (d *Device) Writes() WriteBreakdown { return d.writes }

// Reads returns the total line reads.
func (d *Device) Reads() uint64 { return d.reads }

// MaxWear returns the largest per-line write count and the address that
// holds it; NVM lifetime is bounded by the hottest line.
func (d *Device) MaxWear() (mem.Addr, uint64) {
	var ma mem.Addr
	var mx uint64
	for a, w := range d.wear {
		if w > mx || (w == mx && a < ma) {
			ma, mx = a, w
		}
	}
	return ma, mx
}

// Image is a crash snapshot of the persistent state: the NVM contents
// plus nothing else (TCB registers are snapshotted by the engine, which
// owns them).
type Image struct {
	Layout *mem.Layout
	Store  *mem.Store
}

// Snapshot captures the current persistent contents.
func (d *Device) Snapshot() *Image {
	return &Image{Layout: d.layout, Store: d.store.Clone()}
}

// Restore replaces the device contents with a snapshot, clearing access
// statistics. Used to reboot a simulated machine from a crash image.
func (d *Device) Restore(img *Image) {
	d.store = *img.Store.Clone()
	d.writes = WriteBreakdown{}
	d.reads = 0
	d.wear = make(map[mem.Addr]uint64)
}

// Read returns the line at a in the image, with never-written handling
// identical to the live device.
func (i *Image) Read(a mem.Addr) (mem.Line, bool) { return i.Store.Read(a) }

// Write mutates the image in place. Attack injection uses it.
func (i *Image) Write(a mem.Addr, l mem.Line) { i.Store.Write(a, l) }

// Clone deep-copies the image so attacks can be injected on a copy.
func (i *Image) Clone() *Image {
	return &Image{Layout: i.Layout, Store: i.Store.Clone()}
}
