package nvm

import (
	"encoding/binary"
	"fmt"

	"ccnvm/internal/mem"
)

// Finite spare-pool media management.
//
// With FaultModel.SpareLines > 0 the device carves an explicit spare
// region out of the media: every stuck-line heal and every scrub
// give-up consumes one spare line, recorded in a remap table that is
// persisted with the same discipline as the recovery journal (PR 5):
// two fixed slots, each a checksummed record, written alternately by
// sequence number. A commit is one slot write; a crash mid-commit
// leaves a torn slot whose checksum fails, so the previous record
// rules and the interrupted remap rolls back cleanly (the line simply
// re-presents as stuck or weak and is remapped again on the next
// boot). Recovery validates and repairs the table before the four-step
// walk, so a lost mapping is never misread as tampering.
//
// SpareLines == 0 keeps the historical unlimited pool: no table is
// allocated, no accounting happens, and every prior image and digest
// stays bit-identical.

// Remap record geometry. One slot is RemapSlotLen bytes:
//
//	off   0  magic "CCRT" (4)
//	off   4  version (1)
//	off   5  reserved (3)
//	off   8  sequence number (8, little-endian)
//	off  16  entry count (2)
//	off  18  pool size (2)
//	off  20  reserved (4)
//	off  24  entries: RemapMaxEntries × 9 bytes (addr 8 + flags 1;
//	         flag bit 0 = weak-exempt)
//	off 600  FNV-64a checksum over [0,600) (8)
//	         zero padding to 640
const (
	remapMagic     = "CCRT"
	remapVersion   = 1
	remapEntryLen  = 9
	remapHeaderLen = 24

	// RemapMaxEntries bounds the pool: the largest spare region one
	// record can describe.
	RemapMaxEntries = 64

	remapChecksumOff = remapHeaderLen + RemapMaxEntries*remapEntryLen

	// RemapSlotLen is one record slot, RemapTableLen the whole two-slot
	// table, both multiples of the 64-byte persistence chunk so crash
	// tearing composes per chunk exactly like data lines.
	RemapSlotLen  = 640
	RemapTableLen = 2 * RemapSlotLen
)

// RemapEntry is one address→spare mapping. Exempt marks lines the pool
// also shields from weak-line decisions (scrub give-ups and runtime
// retry-exhaustion remaps); plain heals of stuck lines keep the
// historical semantics where the replacement cells can still be weak.
type RemapEntry struct {
	Addr   mem.Addr `json:"addr"`
	Exempt bool     `json:"exempt,omitempty"`
}

// RemapRecord is one decoded table record.
type RemapRecord struct {
	Seq     uint64
	Total   int // provisioned pool size
	Entries []RemapEntry
}

// remapChecksum is FNV-64a, matching the recovery journal's.
func remapChecksum(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// EncodeRemapRecord renders one slot. Entries beyond RemapMaxEntries
// are a programming error (the pool is capped below that).
func EncodeRemapRecord(r RemapRecord) []byte {
	if len(r.Entries) > RemapMaxEntries {
		panic(fmt.Sprintf("nvm: remap record overflow: %d entries", len(r.Entries)))
	}
	b := make([]byte, RemapSlotLen)
	copy(b[0:4], remapMagic)
	b[4] = remapVersion
	binary.LittleEndian.PutUint64(b[8:16], r.Seq)
	binary.LittleEndian.PutUint16(b[16:18], uint16(len(r.Entries)))
	binary.LittleEndian.PutUint16(b[18:20], uint16(r.Total))
	for i, e := range r.Entries {
		off := remapHeaderLen + i*remapEntryLen
		binary.LittleEndian.PutUint64(b[off:off+8], uint64(e.Addr))
		if e.Exempt {
			b[off+8] = 1
		}
	}
	binary.LittleEndian.PutUint64(b[remapChecksumOff:remapChecksumOff+8], remapChecksum(b[:remapChecksumOff]))
	return b
}

// DecodeRemapSlot parses one slot, reporting ok=false for anything
// torn, truncated or foreign.
func DecodeRemapSlot(b []byte) (RemapRecord, bool) {
	if len(b) < RemapSlotLen || string(b[0:4]) != remapMagic || b[4] != remapVersion {
		return RemapRecord{}, false
	}
	if binary.LittleEndian.Uint64(b[remapChecksumOff:remapChecksumOff+8]) != remapChecksum(b[:remapChecksumOff]) {
		return RemapRecord{}, false
	}
	r := RemapRecord{
		Seq:   binary.LittleEndian.Uint64(b[8:16]),
		Total: int(binary.LittleEndian.Uint16(b[18:20])),
	}
	n := int(binary.LittleEndian.Uint16(b[16:18]))
	if n > RemapMaxEntries || n > r.Total {
		return RemapRecord{}, false
	}
	for i := 0; i < n; i++ {
		off := remapHeaderLen + i*remapEntryLen
		r.Entries = append(r.Entries, RemapEntry{
			Addr:   mem.Addr(binary.LittleEndian.Uint64(b[off : off+8])),
			Exempt: b[off+8]&1 != 0,
		})
	}
	return r, true
}

// remapSlotEmpty reports a slot that was never written (all-zero magic):
// fresh media, as opposed to a torn record.
func remapSlotEmpty(b []byte) bool {
	return len(b) >= 4 && b[0] == 0 && b[1] == 0 && b[2] == 0 && b[3] == 0
}

// LoadRemapTable decodes the two-slot table. ok is true when at least
// one slot holds an intact record (the newest by sequence number wins);
// torn is true when a non-empty slot failed its checksum — the
// signature of a crash mid-commit, which the previous record's rule
// rolls back.
func LoadRemapTable(table []byte) (rec RemapRecord, ok, torn bool) {
	if len(table) < RemapTableLen {
		return RemapRecord{}, false, false
	}
	r0, ok0 := DecodeRemapSlot(table[:RemapSlotLen])
	r1, ok1 := DecodeRemapSlot(table[RemapSlotLen:])
	torn = (!ok0 && !remapSlotEmpty(table[:RemapSlotLen])) ||
		(!ok1 && !remapSlotEmpty(table[RemapSlotLen:]))
	switch {
	case ok0 && ok1:
		if r1.Seq > r0.Seq {
			return r1, true, torn
		}
		return r0, true, torn
	case ok0:
		return r0, true, torn
	case ok1:
		return r1, true, torn
	}
	return RemapRecord{}, false, torn
}

// RepairRemapTable is recovery's replay step: the winning record is
// re-encoded over any torn slot, so the rollback is made durable and a
// re-entered recovery sees a fully intact table. Returns the ruling
// record and whether a torn slot was repaired.
func RepairRemapTable(table []byte) (rec RemapRecord, ok, torn bool) {
	rec, ok, torn = LoadRemapTable(table)
	if !ok || !torn {
		return rec, ok, torn
	}
	enc := EncodeRemapRecord(rec)
	if _, s0 := DecodeRemapSlot(table[:RemapSlotLen]); !s0 {
		copy(table[:RemapSlotLen], enc)
	}
	if _, s1 := DecodeRemapSlot(table[RemapSlotLen:]); !s1 {
		copy(table[RemapSlotLen:], enc)
	}
	return rec, ok, torn
}

// SpareStats is the pool's accounting snapshot. Total == 0 means the
// unlimited legacy pool (no finite media management armed).
type SpareStats struct {
	Total   int    `json:"total"`
	Used    int    `json:"used"`
	Remaps  uint64 `json:"remaps"`  // successful remaps this boot
	Refused uint64 `json:"refused"` // remap attempts refused: pool empty
}

// Finite reports whether a finite pool is armed.
func (s SpareStats) Finite() bool { return s.Total > 0 }

// Remaining is the unconsumed spare count (0 on the unlimited pool,
// whose accounting is vacuous).
func (s SpareStats) Remaining() int { return s.Total - s.Used }

// initSparePool formats a finite pool: slot 0 gets an empty sequence-0
// record (hardware pre-provisioning), so recovery always learns the
// pool size even before the first remap commits.
func (d *Device) initSparePool(total int) {
	if total > RemapMaxEntries {
		total = RemapMaxEntries
	}
	d.spareTotal = total
	d.spareUsed = 0
	d.remapEntries = nil
	d.remapIdx = make(map[mem.Addr]int)
	d.remapSeq = 0
	d.remapsBoot = 0
	d.remapRefused = 0
	d.remapTable = make([]byte, RemapTableLen)
	d.remapPrev = nil
	copy(d.remapTable[:RemapSlotLen], EncodeRemapRecord(RemapRecord{Total: total}))
}

// SpareStats returns the pool accounting.
func (d *Device) SpareStats() SpareStats {
	return SpareStats{Total: d.spareTotal, Used: d.spareUsed, Remaps: d.remapsBoot, Refused: d.remapRefused}
}

// RemapEntries returns the committed mappings in consumption order.
func (d *Device) RemapEntries() []RemapEntry {
	return append([]RemapEntry(nil), d.remapEntries...)
}

// RemapTable exposes the persisted table bytes (nil on the unlimited
// pool); snapshots and tests read it.
func (d *Device) RemapTable() []byte { return d.remapTable }

// Remap moves line a onto a spare. exempt additionally shields the
// line from weak-line decisions (scrub give-up semantics); a plain
// heal keeps them, matching the historical stuck-heal behaviour. On
// the unlimited legacy pool the call is free; on a finite pool it
// consumes one spare and commits a remap record, unless a is already
// remapped (re-heals and exempt upgrades re-use the spare). An empty
// pool returns *SpareExhaustedError and changes nothing.
func (d *Device) Remap(a mem.Addr, exempt bool) error {
	a = mem.Align(a)
	if d.spareTotal == 0 {
		if exempt {
			if d.weakExempt == nil {
				d.weakExempt = make(map[mem.Addr]bool)
			}
			d.weakExempt[a] = true
		}
		return nil
	}
	if i, ok := d.remapIdx[a]; ok {
		if exempt && !d.remapEntries[i].Exempt {
			d.remapEntries[i].Exempt = true
			d.weakExempt[a] = true
			d.commitRemapRecord()
		}
		delete(d.stuck, a)
		return nil
	}
	if d.spareUsed >= d.spareTotal {
		d.remapRefused++
		return &SpareExhaustedError{Total: d.spareTotal, Addr: a}
	}
	d.spareUsed++
	d.remapIdx[a] = len(d.remapEntries)
	d.remapEntries = append(d.remapEntries, RemapEntry{Addr: a, Exempt: exempt})
	if exempt {
		d.weakExempt[a] = true
	}
	delete(d.stuck, a)
	d.commitRemapRecord()
	return nil
}

// commitRemapRecord writes the next record into slot seq%2, keeping
// the overwritten slot's prior bytes so crash tearing can compose
// old/new per 64-byte chunk, exactly like a torn data line.
func (d *Device) commitRemapRecord() {
	d.remapsBoot++
	if d.dropRemapCommit {
		return // sabotage: the spare is consumed but the record never lands
	}
	d.remapSeq++
	slot := int(d.remapSeq % 2)
	off := slot * RemapSlotLen
	d.remapPrev = append(d.remapPrev[:0], d.remapTable[off:off+RemapSlotLen]...)
	copy(d.remapTable[off:off+RemapSlotLen], EncodeRemapRecord(RemapRecord{
		Seq:     d.remapSeq,
		Total:   d.spareTotal,
		Entries: d.remapEntries,
	}))
}

// TearNewestRemapSlot applies power-failure tearing to the most recent
// remap-record commit: each 64-byte chunk of the newest slot
// independently keeps the new bytes, reverts to the slot's prior
// content, or mixes per 8-byte word, per the fault model's TearMask.
// A damaged slot fails its checksum and the previous record rules —
// the crash-consistency contract under test. No-op unless a finite
// pool committed a record this boot under TornWrites. Reports whether
// the slot was damaged.
func (d *Device) TearNewestRemapSlot() bool {
	if d.spareTotal == 0 || d.remapsBoot == 0 || d.remapPrev == nil || !d.faults.CrashAffectsWPQ() || !d.faults.TornWrites {
		return false
	}
	slot := int(d.remapSeq % 2)
	off := slot * RemapSlotLen
	// Pseudo-addresses past twice the device size keep the table's tear
	// decisions out of every real line's stream (the recovery journal
	// uses [TotalBytes, TotalBytes+384) for its own).
	base := mem.Addr(2 * d.layout.TotalBytes())
	torn := false
	for c := 0; c < RemapSlotLen/64; c++ {
		mask := d.faults.TearMask(base+mem.Addr(off+c*64), d.remapSeq)
		if mask == 0xff {
			continue
		}
		var old, new mem.Line
		copy(old[:], d.remapPrev[c*64:c*64+64])
		copy(new[:], d.remapTable[off+c*64:off+c*64+64])
		mixed := MixWords(old, new, mask)
		copy(d.remapTable[off+c*64:off+c*64+64], mixed[:])
		torn = true
	}
	return torn
}

// SabotageDropRemapCommit breaks the remap-commit protocol for the
// torture harness's break-remap-commit self-test: spares are consumed
// and lines healed, but record writes are silently dropped, so the
// persisted table forgets every remap. The spare-accounting oracle
// must notice.
func (d *Device) SabotageDropRemapCommit() { d.dropRemapCommit = true }

// healOnWrite heals a stuck line at its rewrite. On the unlimited
// legacy pool this is the free delete it always was; a finite pool
// charges the heal one spare (re-heals of an already-remapped line are
// free), and once the pool is exhausted the write lands on dead cells:
// the content is stored but the line stays stuck, so the loss is
// visible to reads rather than silent.
func (d *Device) healOnWrite(a mem.Addr) {
	if !d.stuck[a] {
		return
	}
	if d.spareTotal == 0 {
		delete(d.stuck, a)
		return
	}
	_ = d.Remap(a, false) // exhaustion already counted in remapRefused
}

// restoreSparePool rebuilds the pool from a snapshot's table bytes:
// the ruling record is the single source of truth, so a remap whose
// commit tore rolls back here (its line re-presents as stuck or weak
// and is simply remapped again).
func (d *Device) restoreSparePool(table []byte) {
	d.remapTable = append([]byte(nil), table...)
	d.remapIdx = make(map[mem.Addr]int)
	d.remapEntries = nil
	d.weakExempt = make(map[mem.Addr]bool)
	d.spareUsed = 0
	d.remapSeq = 0
	d.remapsBoot = 0
	d.remapRefused = 0
	d.remapPrev = nil
	rec, ok, _ := LoadRemapTable(d.remapTable)
	if !ok {
		return
	}
	d.spareTotal = rec.Total
	d.remapSeq = rec.Seq
	for _, e := range rec.Entries {
		d.remapIdx[e.Addr] = len(d.remapEntries)
		d.remapEntries = append(d.remapEntries, e)
		if e.Exempt {
			d.weakExempt[e.Addr] = true
		}
	}
	d.spareUsed = len(d.remapEntries)
}
