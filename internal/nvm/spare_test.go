package nvm

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"ccnvm/internal/mem"
)

func spareDevice(t testing.TB, m *FaultModel) *Device {
	t.Helper()
	d := device(t)
	d.SetFaultModel(m)
	return d
}

func TestRemapRecordRoundTrip(t *testing.T) {
	rec := RemapRecord{
		Seq:   7,
		Total: 5,
		Entries: []RemapEntry{
			{Addr: 0x1000},
			{Addr: 0x2040, Exempt: true},
			{Addr: 0x3f80},
		},
	}
	b := EncodeRemapRecord(rec)
	if len(b) != RemapSlotLen {
		t.Fatalf("slot length %d, want %d", len(b), RemapSlotLen)
	}
	got, ok := DecodeRemapSlot(b)
	if !ok {
		t.Fatal("round trip failed to decode")
	}
	if got.Seq != rec.Seq || got.Total != rec.Total || !reflect.DeepEqual(got.Entries, rec.Entries) {
		t.Fatalf("round trip changed the record: %+v -> %+v", rec, got)
	}
}

func TestDecodeRemapSlotRejectsDamage(t *testing.T) {
	rec := RemapRecord{Seq: 3, Total: 4, Entries: []RemapEntry{{Addr: 0x40}}}
	good := EncodeRemapRecord(rec)
	for _, off := range []int{0, 4, 8, 16, 18, remapHeaderLen, remapChecksumOff, remapChecksumOff + 7} {
		b := append([]byte(nil), good...)
		b[off] ^= 0xff
		if _, ok := DecodeRemapSlot(b); ok {
			t.Errorf("decode accepted a slot with byte %d flipped", off)
		}
	}
	if _, ok := DecodeRemapSlot(good[:RemapSlotLen-1]); ok {
		t.Error("decode accepted a truncated slot")
	}
	// An entry count above the provisioned pool size is structurally
	// impossible on a real device; a slot claiming it is damage.
	over := EncodeRemapRecord(RemapRecord{Seq: 1, Total: 2, Entries: []RemapEntry{{Addr: 0x40}, {Addr: 0x80}}})
	over[16] = 3 // count 3 > total 2; checksum now stale too, but fix it
	copyChecksum(over)
	if _, ok := DecodeRemapSlot(over); ok {
		t.Error("decode accepted count > total")
	}
}

// copyChecksum re-seals a slot after a test mutates its header, so the
// structural checks (not the checksum) are what reject it.
func copyChecksum(b []byte) {
	sum := remapChecksum(b[:remapChecksumOff])
	for i := 0; i < 8; i++ {
		b[remapChecksumOff+i] = byte(sum >> (8 * i))
	}
}

func TestLoadRemapTableNewestWins(t *testing.T) {
	table := make([]byte, RemapTableLen)
	copy(table[:RemapSlotLen], EncodeRemapRecord(RemapRecord{Seq: 4, Total: 3, Entries: []RemapEntry{{Addr: 0x40}, {Addr: 0x80}}}))
	copy(table[RemapSlotLen:], EncodeRemapRecord(RemapRecord{Seq: 3, Total: 3, Entries: []RemapEntry{{Addr: 0x40}}}))
	rec, ok, torn := LoadRemapTable(table)
	if !ok || torn {
		t.Fatalf("load: ok=%v torn=%v", ok, torn)
	}
	if rec.Seq != 4 || len(rec.Entries) != 2 {
		t.Fatalf("winner is seq %d with %d entries, want seq 4 with 2", rec.Seq, len(rec.Entries))
	}
}

func TestLoadRemapTableTornFallsBack(t *testing.T) {
	table := make([]byte, RemapTableLen)
	copy(table[:RemapSlotLen], EncodeRemapRecord(RemapRecord{Seq: 4, Total: 3, Entries: []RemapEntry{{Addr: 0x40}, {Addr: 0x80}}}))
	copy(table[RemapSlotLen:], EncodeRemapRecord(RemapRecord{Seq: 3, Total: 3, Entries: []RemapEntry{{Addr: 0x40}}}))
	table[8] ^= 0x5a // tear the newest slot's sequence field
	rec, ok, torn := LoadRemapTable(table)
	if !ok || !torn {
		t.Fatalf("load: ok=%v torn=%v, want intact fallback over a torn slot", ok, torn)
	}
	if rec.Seq != 3 || len(rec.Entries) != 1 {
		t.Fatalf("fallback is seq %d with %d entries, want the previous record", rec.Seq, len(rec.Entries))
	}

	// Repair makes the rollback durable: the torn slot is rewritten from
	// the winner and a re-entered load sees a fully intact table.
	if _, ok, torn := RepairRemapTable(table); !ok || !torn {
		t.Fatalf("repair: ok=%v torn=%v", ok, torn)
	}
	rec2, ok2, torn2 := LoadRemapTable(table)
	if !ok2 || torn2 {
		t.Fatalf("post-repair load: ok=%v torn=%v", ok2, torn2)
	}
	if rec2.Seq != rec.Seq || !reflect.DeepEqual(rec2.Entries, rec.Entries) {
		t.Fatal("repair changed the ruling record")
	}
}

func TestLoadRemapTableEmptySlotIsNotTorn(t *testing.T) {
	table := make([]byte, RemapTableLen)
	copy(table[:RemapSlotLen], EncodeRemapRecord(RemapRecord{Total: 2}))
	rec, ok, torn := LoadRemapTable(table)
	if !ok || torn {
		t.Fatalf("freshly formatted table: ok=%v torn=%v", ok, torn)
	}
	if rec.Total != 2 || len(rec.Entries) != 0 {
		t.Fatalf("format record = %+v", rec)
	}
}

// TestRemapCommitTearEveryChunk is the exhaustive crash-mid-commit
// property at the record layer: a commit is ten 64-byte chunk writes,
// and a crash after any prefix — or tearing any chunk at word
// granularity — must leave a table that decodes to exactly the old or
// the new record, never to garbage and never to a false "unformatted".
func TestRemapCommitTearEveryChunk(t *testing.T) {
	oldRec := RemapRecord{Seq: 5, Total: 4, Entries: []RemapEntry{{Addr: 0x40}, {Addr: 0x80, Exempt: true}}}
	newRec := RemapRecord{Seq: 7, Total: 4, Entries: []RemapEntry{{Addr: 0x40}, {Addr: 0x80, Exempt: true}, {Addr: 0x1000}}}
	otherSlot := EncodeRemapRecord(RemapRecord{Seq: 6, Total: 4, Entries: oldRec.Entries})
	oldSlot := EncodeRemapRecord(oldRec)
	newSlot := EncodeRemapRecord(newRec)

	check := func(name string, slot []byte, wantSeq uint64, wantTorn bool) {
		t.Helper()
		table := make([]byte, RemapTableLen)
		copy(table[RemapSlotLen:], slot)      // slot 1: the commit in flight
		copy(table[:RemapSlotLen], otherSlot) // slot 0: the intact seq-6 record
		rec, ok, torn := LoadRemapTable(table)
		if !ok {
			t.Fatalf("%s: no record rules", name)
		}
		if torn != wantTorn {
			t.Fatalf("%s: torn=%v, want %v", name, torn, wantTorn)
		}
		if rec.Seq != wantSeq {
			t.Fatalf("%s: seq %d rules, want %d", name, rec.Seq, wantSeq)
		}
		n := len(rec.Entries)
		if n != len(oldRec.Entries) && n != len(newRec.Entries) {
			t.Fatalf("%s: ruling record has %d entries, want %d or %d", name, n, len(oldRec.Entries), len(newRec.Entries))
		}
		// Recovery's repair must converge: after one repair the table is
		// intact and a second load agrees byte for byte.
		RepairRemapTable(table)
		rec2, ok2, torn2 := LoadRemapTable(table)
		if !ok2 || torn2 || rec2.Seq != rec.Seq || !reflect.DeepEqual(rec2.Entries, rec.Entries) {
			t.Fatalf("%s: repair did not converge (ok=%v torn=%v seq=%d)", name, ok2, torn2, rec2.Seq)
		}
	}

	chunks := RemapSlotLen / 64
	for k := 0; k <= chunks; k++ {
		// Crash after the k-th chunk write: prefix new, suffix old.
		slot := append([]byte(nil), oldSlot...)
		copy(slot[:k*64], newSlot[:k*64])
		wantSeq, wantTorn := uint64(6), true
		switch k {
		case 0:
			wantSeq, wantTorn = oldRec.Seq, false // commit never started: old slot intact, seq 6 is older
			if oldRec.Seq < 6 {
				wantSeq = 6
			}
		case chunks:
			wantSeq, wantTorn = newRec.Seq, false
		}
		check("prefix", slot, wantSeq, wantTorn)

		// Crash inside the k-th chunk: prefix new, chunk k torn per word.
		if k < chunks {
			var oldL, newL mem.Line
			copy(oldL[:], oldSlot[k*64:k*64+64])
			copy(newL[:], newSlot[k*64:k*64+64])
			if oldL == newL {
				continue // identical chunk: no observable tear
			}
			mixed := MixWords(oldL, newL, 0x2d)
			if mixed == oldL || mixed == newL {
				continue
			}
			slot := append([]byte(nil), oldSlot...)
			copy(slot[:k*64], newSlot[:k*64])
			copy(slot[k*64:k*64+64], mixed[:])
			check("word-mix", slot, 6, true)
		}
	}
}

func TestDeviceSpareAccounting(t *testing.T) {
	d := spareDevice(t, &FaultModel{Seed: 3, StuckLines: 2, SpareLines: 2})
	var l mem.Line
	for i := 0; i < 16; i++ {
		l[0] = byte(i)
		d.Write(mem.Addr(i)*mem.LineSize, l)
	}
	stuck := d.InjectStuckLines()
	if len(stuck) != 2 {
		t.Fatalf("injected %d stuck lines, want 2", len(stuck))
	}

	// Healing a stuck line by rewrite consumes one spare and commits.
	d.Write(stuck[0], l)
	s := d.SpareStats()
	if s.Used != 1 || s.Remaps != 1 || s.Refused != 0 {
		t.Fatalf("after first heal: %+v", s)
	}
	if d.ReadFails(stuck[0], 0) {
		t.Fatal("healed line still fails reads")
	}

	// Re-healing the same line is free: the spare is already assigned.
	d.Write(stuck[0], l)
	if s := d.SpareStats(); s.Used != 1 {
		t.Fatalf("re-heal consumed another spare: %+v", s)
	}

	// An exempt upgrade re-uses the spare but commits a new record.
	before := d.SpareStats().Remaps
	if err := d.Remap(stuck[0], true); err != nil {
		t.Fatalf("exempt upgrade: %v", err)
	}
	s = d.SpareStats()
	if s.Used != 1 || s.Remaps != before+1 {
		t.Fatalf("after exempt upgrade: %+v", s)
	}

	// Second stuck line takes the last spare; the pool is then empty.
	d.Write(stuck[1], l)
	if s := d.SpareStats(); s.Used != 2 || s.Remaining() != 0 {
		t.Fatalf("after second heal: %+v", s)
	}

	// With the pool empty a fresh remap is refused with the typed error
	// and nothing changes.
	var ex *SpareExhaustedError
	if err := d.Remap(0x3000, false); !errors.As(err, &ex) {
		t.Fatalf("exhausted remap returned %v, want *SpareExhaustedError", err)
	}
	if ex.Total != 2 || ex.Addr != 0x3000 {
		t.Fatalf("error carries %+v", ex)
	}
	if s := d.SpareStats(); s.Used != 2 || s.Refused != 1 {
		t.Fatalf("after refused remap: %+v", s)
	}
}

// TestExhaustedHealLeavesLineStuck pins the lost-but-detected contract:
// once the pool is empty a rewrite of a stuck line stores the content
// but cannot heal the cells, so the loss stays visible to reads instead
// of silently disappearing.
func TestExhaustedHealLeavesLineStuck(t *testing.T) {
	d := spareDevice(t, &FaultModel{Seed: 5, StuckLines: 2, SpareLines: 1})
	var l mem.Line
	for i := 0; i < 16; i++ {
		d.Write(mem.Addr(i)*mem.LineSize, l)
	}
	stuck := d.InjectStuckLines()
	if len(stuck) != 2 {
		t.Fatalf("injected %d stuck lines, want 2", len(stuck))
	}
	d.Write(stuck[0], l) // takes the only spare
	d.Write(stuck[1], l) // pool empty: content lands on dead cells
	if !d.ReadFails(stuck[1], 9) {
		t.Fatal("exhausted heal silently cleared the stuck line")
	}
	if got := d.StuckLines(); len(got) != 1 || got[0] != stuck[1] {
		t.Fatalf("stuck set = %v, want [%#x]", got, uint64(stuck[1]))
	}
	if s := d.SpareStats(); s.Refused == 0 {
		t.Fatalf("refusal not counted: %+v", s)
	}
}

func TestSparePoolCappedAtRecordCapacity(t *testing.T) {
	d := spareDevice(t, &FaultModel{Seed: 1, StuckLines: 1, SpareLines: RemapMaxEntries + 100})
	if s := d.SpareStats(); s.Total != RemapMaxEntries {
		t.Fatalf("pool total %d, want cap %d", s.Total, RemapMaxEntries)
	}
}

func TestSpareSnapshotRestoreRoundTrip(t *testing.T) {
	d := spareDevice(t, &FaultModel{Seed: 3, StuckLines: 2, SpareLines: 4})
	var l mem.Line
	for i := 0; i < 16; i++ {
		d.Write(mem.Addr(i)*mem.LineSize, l)
	}
	stuck := d.InjectStuckLines()
	d.Write(stuck[0], l)
	if err := d.Remap(stuck[1], true); err != nil {
		t.Fatal(err)
	}
	want := d.RemapEntries()
	img := d.Snapshot()
	if len(img.RemapTable) != RemapTableLen {
		t.Fatalf("snapshot table is %d bytes", len(img.RemapTable))
	}

	d2 := spareDevice(t, &FaultModel{Seed: 3, StuckLines: 2, SpareLines: 4})
	d2.Restore(img)
	if got := d2.RemapEntries(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restore lost mappings: %v vs %v", got, want)
	}
	s := d2.SpareStats()
	if s.Total != 4 || s.Used != 2 || s.Remaps != 0 {
		t.Fatalf("restored stats = %+v (Remaps counts this boot)", s)
	}
	// The exempt flag must survive: the restored line takes no weak-line
	// decisions.
	if d2.LineWeak(stuck[1]) {
		t.Fatal("restored exempt line presents as weak")
	}
}

// TestSabotagedCommitRollsBackOnRestore pins what the torture harness's
// break-remap-commit self-test relies on: a consumed spare whose record
// write was dropped does not survive a reboot — the table is the single
// source of truth.
func TestSabotagedCommitRollsBackOnRestore(t *testing.T) {
	d := spareDevice(t, &FaultModel{Seed: 3, StuckLines: 1, SpareLines: 2})
	var l mem.Line
	for i := 0; i < 16; i++ {
		d.Write(mem.Addr(i)*mem.LineSize, l)
	}
	stuck := d.InjectStuckLines()
	d.SabotageDropRemapCommit()
	d.Write(stuck[0], l)
	if s := d.SpareStats(); s.Used != 1 {
		t.Fatalf("sabotaged heal did not consume in memory: %+v", s)
	}
	d2 := spareDevice(t, &FaultModel{Seed: 3, StuckLines: 1, SpareLines: 2})
	d2.Restore(d.Snapshot())
	if s := d2.SpareStats(); s.Used != 0 {
		t.Fatalf("dropped commit survived the reboot: %+v", s)
	}
}

// TestWriteBatchMatchesSerialWrite is the batch/serial parity contract:
// WriteBatch is documented as equivalent to calling Write in index
// order, and that must hold for every side channel — region counters,
// wear, stuck-line healing, spare-pool accounting, the persisted remap
// table and the stored bytes — not just for the happy-path contents.
func TestWriteBatchMatchesSerialWrite(t *testing.T) {
	model := func() *FaultModel {
		return &FaultModel{Seed: 9, WeakLineRate: 0.2, StuckLines: 3, SpareLines: 2}
	}
	serial := spareDevice(t, model())
	batch := spareDevice(t, model())

	// Identical pre-state: written lines, then the deterministic stuck
	// injection (equal seeds and equal written sets fail identically).
	seed := func(d *Device) []mem.Addr {
		var l mem.Line
		for i := 0; i < 24; i++ {
			l[0] = byte(i)
			d.Write(mem.Addr(i)*mem.LineSize, l)
		}
		return d.InjectStuckLines()
	}
	s1, s2 := seed(serial), seed(batch)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("stuck injection diverged before the test: %v vs %v", s1, s2)
	}

	// A mixed sequence: data rewrites (healing all three stuck lines,
	// exhausting the two spares), metadata regions, repeats for wear,
	// and one out-of-range address for error parity.
	lay := serial.Layout()
	addrs := []mem.Addr{
		s1[0], s1[1], 0, 3 * mem.LineSize, s1[2],
		lay.CounterBase, lay.HMACBase, lay.NodeAddr(1, 0),
		3 * mem.LineSize, 3 * mem.LineSize,
		mem.Addr(lay.TotalBytes()), // out of range
		s1[0],                      // re-heal, free
	}
	lines := make([]mem.Line, len(addrs))
	for i := range lines {
		lines[i][0] = byte(0x80 + i)
	}

	var serialErrs []error
	for i, a := range addrs {
		if err := serial.Write(a, lines[i]); err != nil {
			serialErrs = append(serialErrs, err)
		}
	}
	// Replay through WriteBatch in uneven chunks and varying workers.
	var batchErrs []error
	for i := 0; i < len(addrs); {
		n := 1 + (i % 4)
		if i+n > len(addrs) {
			n = len(addrs) - i
		}
		batchErrs = append(batchErrs, batch.WriteBatch(addrs[i:i+n], lines[i:i+n], 1+i%3)...)
		i += n
	}

	if len(serialErrs) != len(batchErrs) {
		t.Fatalf("error parity: serial %v vs batch %v", serialErrs, batchErrs)
	}
	for i := range serialErrs {
		if serialErrs[i].Error() != batchErrs[i].Error() {
			t.Fatalf("error %d differs: %v vs %v", i, serialErrs[i], batchErrs[i])
		}
	}
	if sw, bw := serial.Writes(), batch.Writes(); sw != bw {
		t.Fatalf("write breakdowns diverge: %v vs %v", sw, bw)
	}
	sa, swear := serial.MaxWear()
	ba, bwear := batch.MaxWear()
	if sa != ba || swear != bwear {
		t.Fatalf("wear diverges: (%#x,%d) vs (%#x,%d)", uint64(sa), swear, uint64(ba), bwear)
	}
	if !reflect.DeepEqual(serial.StuckLines(), batch.StuckLines()) {
		t.Fatalf("stuck sets diverge: %v vs %v", serial.StuckLines(), batch.StuckLines())
	}
	if ss, bs := serial.SpareStats(), batch.SpareStats(); ss != bs {
		t.Fatalf("spare accounting diverges: %+v vs %+v", ss, bs)
	}
	if !reflect.DeepEqual(serial.RemapEntries(), batch.RemapEntries()) {
		t.Fatalf("remap entries diverge: %v vs %v", serial.RemapEntries(), batch.RemapEntries())
	}
	si, bi := serial.Snapshot(), batch.Snapshot()
	if !si.Store.Equal(bi.Store) {
		t.Fatal("stored contents diverge")
	}
	if !bytes.Equal(si.RemapTable, bi.RemapTable) {
		t.Fatal("persisted remap tables diverge")
	}
}
