package nvm

import (
	"testing"

	"ccnvm/internal/mem"
)

func device(t testing.TB) *Device {
	t.Helper()
	return NewDevice(mem.MustLayout(64<<20), PCMTiming(3))
}

func TestPCMTiming(t *testing.T) {
	tm := PCMTiming(3)
	if tm.ReadCycles != 180 || tm.WriteCycles != 450 {
		t.Fatalf("timing = %+v, want 180/450 at 3 GHz", tm)
	}
}

func TestWriteBreakdownByRegion(t *testing.T) {
	d := device(t)
	lay := d.Layout()
	var l mem.Line
	d.Write(0, l)                      // data
	d.Write(lay.CounterBase, l)        // counter
	d.Write(lay.HMACBase, l)           // hmac
	d.Write(lay.NodeAddr(1, 0), l)     // tree
	d.Write(mem.Addr(mem.LineSize), l) // data again
	w := d.Writes()
	if w.Data != 2 || w.Counter != 1 || w.HMAC != 1 || w.Tree != 1 {
		t.Fatalf("breakdown = %v", w)
	}
	if w.Total() != 5 {
		t.Fatalf("total = %d, want 5", w.Total())
	}
}

func TestWriteOutsideSpacePanics(t *testing.T) {
	d := device(t)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-space write did not panic")
		}
	}()
	d.Write(mem.Addr(d.Layout().TotalBytes()), mem.Line{})
}

func TestReadNeverWritten(t *testing.T) {
	d := device(t)
	l, ok := d.Read(0)
	if ok {
		t.Fatal("unwritten line reported as written")
	}
	if l != (mem.Line{}) {
		t.Fatal("unwritten line not zero")
	}
	if d.Reads() != 1 {
		t.Fatal("read not counted")
	}
}

func TestPeekDoesNotCount(t *testing.T) {
	d := device(t)
	d.Peek(0)
	if d.Reads() != 0 {
		t.Fatal("Peek counted as a read")
	}
}

func TestWear(t *testing.T) {
	d := device(t)
	var l mem.Line
	for i := 0; i < 5; i++ {
		d.Write(128, l)
	}
	d.Write(0, l)
	a, w := d.MaxWear()
	if a != 128 || w != 5 {
		t.Fatalf("MaxWear = (%#x,%d), want (0x80,5)", uint64(a), w)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	d := device(t)
	var l mem.Line
	l[0] = 1
	d.Write(0, l)
	img := d.Snapshot()
	l[0] = 2
	d.Write(0, l)
	got, _ := img.Read(0)
	if got[0] != 1 {
		t.Fatal("snapshot sees later writes")
	}
}

func TestRestoreResetsStats(t *testing.T) {
	d := device(t)
	var l mem.Line
	d.Write(0, l)
	img := d.Snapshot()
	d.Read(0)
	d.Restore(img)
	if d.Reads() != 0 || d.Writes().Total() != 0 {
		t.Fatal("Restore did not clear statistics")
	}
	if _, ok := d.Peek(0); !ok {
		t.Fatal("Restore lost contents")
	}
}

func TestImageCloneIsDeep(t *testing.T) {
	d := device(t)
	var l mem.Line
	l[0] = 1
	d.Write(0, l)
	img := d.Snapshot()
	cp := img.Clone()
	l[0] = 9
	cp.Write(0, l)
	orig, _ := img.Read(0)
	if orig[0] != 1 {
		t.Fatal("image clone shares storage")
	}
}

func TestWriteBreakdownAdd(t *testing.T) {
	a := WriteBreakdown{Data: 1, HMAC: 2, Counter: 3, Tree: 4}
	b := WriteBreakdown{Data: 10, HMAC: 20, Counter: 30, Tree: 40}
	a.Add(b)
	if a.Data != 11 || a.HMAC != 22 || a.Counter != 33 || a.Tree != 44 {
		t.Fatalf("Add result = %+v", a)
	}
}
