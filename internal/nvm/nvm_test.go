package nvm

import (
	"errors"
	"testing"

	"ccnvm/internal/mem"
)

func device(t testing.TB) *Device {
	t.Helper()
	return NewDevice(mem.MustLayout(64<<20), PCMTiming(3))
}

func TestPCMTiming(t *testing.T) {
	tm := PCMTiming(3)
	if tm.ReadCycles != 180 || tm.WriteCycles != 450 {
		t.Fatalf("timing = %+v, want 180/450 at 3 GHz", tm)
	}
}

func TestWriteBreakdownByRegion(t *testing.T) {
	d := device(t)
	lay := d.Layout()
	var l mem.Line
	d.Write(0, l)                      // data
	d.Write(lay.CounterBase, l)        // counter
	d.Write(lay.HMACBase, l)           // hmac
	d.Write(lay.NodeAddr(1, 0), l)     // tree
	d.Write(mem.Addr(mem.LineSize), l) // data again
	w := d.Writes()
	if w.Data != 2 || w.Counter != 1 || w.HMAC != 1 || w.Tree != 1 {
		t.Fatalf("breakdown = %v", w)
	}
	if w.Total() != 5 {
		t.Fatalf("total = %d, want 5", w.Total())
	}
}

func TestWriteOutsideSpaceReturnsTypedError(t *testing.T) {
	d := device(t)
	bad := mem.Addr(d.Layout().TotalBytes())
	err := d.Write(bad, mem.Line{})
	var re *AddrRangeError
	if !errors.As(err, &re) {
		t.Fatalf("out-of-space write returned %v, want *AddrRangeError", err)
	}
	if re.Addr != bad {
		t.Fatalf("error names address %#x, want %#x", uint64(re.Addr), uint64(bad))
	}
	if d.Writes().Total() != 0 {
		t.Fatal("failed write counted against a region")
	}
}

func TestReadNeverWritten(t *testing.T) {
	d := device(t)
	l, ok := d.Read(0)
	if ok {
		t.Fatal("unwritten line reported as written")
	}
	if l != (mem.Line{}) {
		t.Fatal("unwritten line not zero")
	}
	if d.Reads() != 1 {
		t.Fatal("read not counted")
	}
}

func TestPeekDoesNotCount(t *testing.T) {
	d := device(t)
	d.Peek(0)
	if d.Reads() != 0 {
		t.Fatal("Peek counted as a read")
	}
}

func TestWear(t *testing.T) {
	d := device(t)
	var l mem.Line
	for i := 0; i < 5; i++ {
		d.Write(128, l)
	}
	d.Write(0, l)
	a, w := d.MaxWear()
	if a != 128 || w != 5 {
		t.Fatalf("MaxWear = (%#x,%d), want (0x80,5)", uint64(a), w)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	d := device(t)
	var l mem.Line
	l[0] = 1
	d.Write(0, l)
	img := d.Snapshot()
	l[0] = 2
	d.Write(0, l)
	got, _ := img.Read(0)
	if got[0] != 1 {
		t.Fatal("snapshot sees later writes")
	}
}

func TestRestoreResetsStats(t *testing.T) {
	d := device(t)
	var l mem.Line
	d.Write(0, l)
	img := d.Snapshot()
	d.Read(0)
	d.Restore(img)
	if d.Reads() != 0 || d.Writes().Total() != 0 {
		t.Fatal("Restore did not clear statistics")
	}
	if _, ok := d.Peek(0); !ok {
		t.Fatal("Restore lost contents")
	}
}

func TestImageCloneIsDeep(t *testing.T) {
	d := device(t)
	var l mem.Line
	l[0] = 1
	d.Write(0, l)
	img := d.Snapshot()
	cp := img.Clone()
	l[0] = 9
	cp.Write(0, l)
	orig, _ := img.Read(0)
	if orig[0] != 1 {
		t.Fatal("image clone shares storage")
	}
}

func TestWriteBreakdownAdd(t *testing.T) {
	a := WriteBreakdown{Data: 1, HMAC: 2, Counter: 3, Tree: 4}
	b := WriteBreakdown{Data: 10, HMAC: 20, Counter: 30, Tree: 40}
	a.Add(b)
	if a.Data != 11 || a.HMAC != 22 || a.Counter != 33 || a.Tree != 44 {
		t.Fatalf("Add result = %+v", a)
	}
}

// TestRestoreResetsWear pins the wear semantics Restore documents: wear
// counters track per-boot write pressure, so a reboot from a crash
// image starts them at zero and only post-restore writes accumulate.
// The fault model keys weak-line decisions on (addr, wear), so this
// reset is also what re-rolls cell state across a reboot.
func TestRestoreResetsWear(t *testing.T) {
	d := device(t)
	var l mem.Line
	for i := 0; i < 5; i++ {
		d.Write(128, l)
	}
	img := d.Snapshot()
	d.Restore(img)
	if _, w := d.MaxWear(); w != 0 {
		t.Fatalf("wear survived Restore: max %d, want 0", w)
	}
	d.Write(128, l)
	d.Write(128, l)
	d.Write(0, l)
	if a, w := d.MaxWear(); a != 128 || w != 2 {
		t.Fatalf("post-restore MaxWear = (%#x,%d), want (0x80,2)", uint64(a), w)
	}
}
