module ccnvm

go 1.22
