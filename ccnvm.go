// Package ccnvm is a from-scratch reproduction of "No Compromises:
// Secure NVM with Crash Consistency, Write-Efficiency and
// High-Performance" (Yang, Lu, Chen, Mao, Shu — DAC 2019).
//
// It bundles a cycle-level memory-hierarchy simulator (trace-driven
// core, L1/L2 caches, metadata cache, memory controller with an
// ADR-backed write pending queue, banked PCM device), a fully
// functional security layer (real AES counter-mode encryption,
// truncated HMAC-SHA-1 authentication, a 4-ary Bonsai Merkle Tree),
// the cc-NVM crash-consistency design with epoch-based consistent BMT
// and deferred spreading, and every baseline the paper evaluates
// against: secure NVM without crash consistency, strict consistency,
// Osiris Plus, and cc-NVM without deferred spreading.
//
// The three entry points most users need:
//
//   - Simulation: NewMachine / RunBenchmark run a design over a
//     workload and report IPC, NVM traffic and engine activity.
//   - Evaluation: RunFig5 / RunFig6a / RunFig6b regenerate the paper's
//     figures over the built-in SPEC CPU2006 stand-in workloads.
//   - Recovery: Crash a machine, optionally inject attacks with the
//     Spoof/Splice/Replay helpers, then Recover the image to detect and
//     locate tampering exactly as the paper's §4.4 describes.
//   - Serving: OpenStore exposes the secure NVM as a concurrency-safe
//     storage engine (reads, epoch-batched writes, snapshots, crash +
//     reboot), and OpenKV layers a crash-consistent key-value namespace
//     on top — the stack behind the ccnvm-kvd daemon.
//
// Everything is deterministic: the same configuration and seed always
// produce the same cycle counts, traffic and recovery outcomes.
package ccnvm

import (
	"io"

	"ccnvm/internal/attack"
	"ccnvm/internal/design"
	"ccnvm/internal/engine"
	"ccnvm/internal/experiments"
	"ccnvm/internal/kv"
	"ccnvm/internal/mem"
	"ccnvm/internal/nvm"
	"ccnvm/internal/recovery"
	"ccnvm/internal/sim"
	"ccnvm/internal/store"
	"ccnvm/internal/trace"
)

// Design names accepted by Config.Design, RunBenchmark and the Run*
// evaluation helpers. The canonical list lives in the internal design
// registry; these constants re-export it so callers never spell a
// design name as a raw string.
const (
	DesignWoCC      = design.WoCC      // secure NVM without crash consistency (the baseline)
	DesignSC        = design.SC        // strict consistency
	DesignOsiris    = design.Osiris    // Osiris Plus
	DesignCCNVMWoDS = design.CCNVMWoDS // cc-NVM without deferred spreading
	DesignCCNVM     = design.CCNVM     // cc-NVM (the paper's design)
	DesignCCNVMExt  = design.CCNVMExt  // §4.4 extension with per-line update registers
	DesignArsenal   = design.Arsenal   // related-work compression baseline
)

// Core simulation types.
type (
	// Config describes one simulated machine; the zero value selects the
	// paper's configuration (16 GiB PCM, 32 KB/256 KB caches, 128 KB
	// metadata cache, N=16, M=64).
	Config = sim.Config
	// Machine is a runnable simulated system.
	Machine = sim.Machine
	// Result is the outcome of a simulation run.
	Result = sim.Result
	// Params carries the security engine's latencies and limits (N, M).
	Params = engine.Params

	// Addr is a physical line-aligned NVM address.
	Addr = mem.Addr
	// Line is one 64-byte memory line.
	Line = mem.Line

	// Op is one trace operation; Profile parameterizes a synthetic
	// workload; Generator produces deterministic op streams.
	Op        = trace.Op
	Profile   = trace.Profile
	Generator = trace.Generator

	// CrashImage is the persistent state surviving a power failure.
	CrashImage = engine.CrashImage
	// NVMImage is a raw snapshot of NVM contents (used by replay
	// attacks, which need an older image).
	NVMImage = nvm.Image
	// RecoveryReport is the outcome of post-crash recovery.
	RecoveryReport = recovery.Report
	// Recovered is the state a rebooted controller resumes from.
	Recovered = recovery.Recovered
	// RecoveryInterrupt models a power failure during recovery itself:
	// the After-th persisted recovery write is struck and the Apply pass
	// stops, to be resumed from the persisted recovery journal.
	RecoveryInterrupt = recovery.Interrupt
	// TamperedBlock is a located spoofing/splicing attack.
	TamperedBlock = recovery.TamperedBlock

	// WriteBreakdown counts NVM line writes by region.
	WriteBreakdown = nvm.WriteBreakdown

	// EvalOptions control the figure-regeneration sweeps.
	EvalOptions = experiments.Options
	// Fig5 is the design x benchmark matrix behind Figures 5(a)/(b).
	Fig5 = experiments.Fig5
	// Fig6 is one sensitivity sweep behind Figures 6(a)/(b).
	Fig6 = experiments.Fig6
	// Headline holds the paper's summary claims computed from a run.
	Headline = experiments.Headline
	// RecoveryMatrix is the §4.4 design x attack capability table.
	RecoveryMatrix = experiments.RecoveryMatrix
	// Lifetime is the per-design NVM endurance summary.
	Lifetime = experiments.Lifetime
)

// Storage engine facade and KV layer (the serving stack).
type (
	// Storage is the concurrency-safe storage-engine facade over one
	// secure NVM: reads, epoch-batched writes, COW snapshots, crash
	// capture and recovery-aware reboot. (Store is taken by the trace
	// op kind, which predates the facade.)
	Storage = store.Store
	// StorageOptions configure OpenStore / RebootStore.
	StorageOptions = store.Options

	// KV is one crash-consistent key-value namespace over a Store.
	KV = kv.DB
	// KVOptions configure OpenKV (e.g. the write-stall controller).
	KVOptions = kv.Options
	// KVOp is one operation of an atomic KV batch.
	KVOp = kv.Op
	// KVSnapshot is a point-in-time read view of a KV namespace.
	KVSnapshot = kv.Snapshot
	// KVServer speaks the ccnvm-kvd JSON-lines protocol over a listener.
	KVServer = kv.Server
)

// KV batch operation kinds.
const (
	KVPut    = kv.OpPut
	KVDelete = kv.OpDelete
)

// OpenStore opens a fresh storage engine over a new secure NVM.
func OpenStore(o StorageOptions) (*Storage, error) { return store.Open(o) }

// RebootStore recovers a crash image through the four-step + journal
// path and resumes serving from it.
func RebootStore(img *CrashImage, o StorageOptions) (*Storage, *RecoveryReport, error) {
	return store.Reboot(img, o)
}

// SaveCrashImage / LoadCrashImage persist crash images as
// checksummed, deterministic files (the ccnvm-kvd -image format).
func SaveCrashImage(path string, img *CrashImage) error { return store.SaveImage(path, img) }
func LoadCrashImage(path string) (*CrashImage, error)   { return store.LoadImage(path) }

// OpenKV opens (or, after a reboot, rebuilds from the persisted log)
// a KV namespace over a store.
func OpenKV(st *Storage, o KVOptions) (*KV, error) { return kv.Open(st, o) }

// NewKVServer wraps a namespace in the JSON-lines protocol server.
func NewKVServer(db *KV) *KVServer { return kv.NewServer(db) }

// Memory-operation kinds for hand-built traces.
const (
	Load  = trace.Load
	Store = trace.Store
)

// Designs returns the five evaluated designs in the paper's order,
// DesignWoCC through DesignCCNVM.
func Designs() []string { return sim.Designs() }

// AllDesigns additionally includes DesignCCNVMExt — the paper's §4.4
// future-work extension: persistent per-line update registers that let
// recovery localize even the deferred-spreading replay window — and the
// DesignArsenal compression baseline.
func AllDesigns() []string { return sim.AllDesigns() }

// DesignLabel maps a design name to the paper's label (e.g. DesignCCNVM
// renders as cc-NVM).
func DesignLabel(d string) string { return sim.DesignLabel(d) }

// Benchmarks returns the eight SPEC CPU2006 stand-in workloads in the
// paper's figure order.
func Benchmarks() []string { return trace.Benchmarks() }

// ProfileByName returns a built-in workload profile.
func ProfileByName(name string) (Profile, error) { return trace.ProfileByName(name) }

// NewGenerator builds a deterministic trace generator.
func NewGenerator(p Profile, seed int64) (*Generator, error) { return trace.NewGenerator(p, seed) }

// CollectOps materializes n operations from a generator so that every
// design can replay an identical stream.
func CollectOps(g *Generator, n int) []Op { return trace.Collect(g, n) }

// NewMachine builds a simulated machine.
func NewMachine(cfg Config) (*Machine, error) { return sim.New(cfg) }

// RunBenchmark builds a machine for design, generates the named
// built-in workload with the given seed and runs n memory operations.
func RunBenchmark(design, benchmark string, n int, seed int64, cfg Config) (Result, error) {
	return sim.RunBenchmark(design, benchmark, n, seed, cfg)
}

// RunFig5 runs the full design x benchmark matrix behind Figure 5.
func RunFig5(o EvalOptions) (*Fig5, error) { return experiments.RunFig5(o) }

// RunFig6a sweeps the update-times limit N (Figure 6(a)); nil selects
// the paper's {4, 8, 16, 32, 64}.
func RunFig6a(o EvalOptions, ns []uint64) (*Fig6, error) { return experiments.RunFig6a(o, ns) }

// RunFig6b sweeps the dirty-address-queue entries M (Figure 6(b)); nil
// selects the paper's {32, 40, 48, 56, 64}.
func RunFig6b(o EvalOptions, ms []int) (*Fig6, error) { return experiments.RunFig6b(o, ms) }

// RunRecoveryMatrix crashes every design under every §4.4 attack and
// classifies the recovery outcome (clean / detected / located /
// unrecoverable). nil selects all designs including the extension.
func RunRecoveryMatrix(designs []string) (*RecoveryMatrix, error) {
	return experiments.RunRecoveryMatrix(designs)
}

// RunLifetime measures the endurance impact (total writes, hottest-line
// wear, relative lifetime) of every design on one workload.
func RunLifetime(o EvalOptions, benchmark string) (*Lifetime, error) {
	return experiments.RunLifetime(o, benchmark)
}

// Recover runs the paper's four-step crash recovery and attack location
// on a crash image.
func Recover(img *CrashImage) *RecoveryReport { return recovery.Recover(img) }

// ApplyRecovery writes the recovered counters and rebuilt Merkle tree
// into the image and returns the TCB state a rebooted machine resumes
// from. Call it only for a clean (or located-and-discarded) report.
func ApplyRecovery(img *CrashImage, rep *RecoveryReport) Recovered {
	return recovery.Apply(img, rep)
}

// ApplyRecoveryInterrupted is ApplyRecovery with a simulated power
// failure: the interrupt's After-th persisted recovery write is struck
// and the pass stops with ok=false, leaving the image's recovery
// journal active. A later Recover resumes the pass instead of
// restarting blind. A nil interrupt (or After 0) runs to completion.
func ApplyRecoveryInterrupted(img *CrashImage, rep *RecoveryReport, itr *RecoveryInterrupt) (Recovered, bool) {
	return recovery.ApplyInterrupted(img, rep, itr)
}

// RecoveryJournalActive reports whether the image carries an
// uncommitted recovery journal — a previous Apply pass was interrupted
// and the next Recover will resume it.
func RecoveryJournalActive(img *CrashImage) bool { return recovery.JournalActive(img) }

// Attack injection (the §2.1 adversary: full control of NVM, no access
// to the TCB registers).

// SpoofData flips bits in the data block at addr.
func SpoofData(img *CrashImage, addr Addr) error { return attack.SpoofData(img, addr) }

// SpliceData exchanges the contents of two data blocks.
func SpliceData(img *CrashImage, a, b Addr) error { return attack.SpliceData(img, a, b) }

// ReplayBlock restores a data block and its HMAC from an older
// snapshot (Figure 4's attack).
func ReplayBlock(img *CrashImage, old *NVMImage, addr Addr) error {
	return attack.ReplayBlock(img, old, addr)
}

// ReplayCounterLine restores the counter line covering addr from an
// older snapshot (the replay recovery step 1 locates).
func ReplayCounterLine(img *CrashImage, old *NVMImage, addr Addr) error {
	return attack.ReplayCounterLine(img, old, addr)
}

// SpoofTreeNode corrupts a Merkle-tree node in the image.
func SpoofTreeNode(img *CrashImage, level int, idx uint64) error {
	return attack.SpoofTreeNode(img, level, idx)
}

// SaveTrace writes ops to w in the binary trace format; ParseTrace
// reads them back. Recorded traces replay byte-identically across
// machines, tools and versions.
func SaveTrace(w io.Writer, ops []Op) error { return trace.Save(w, ops) }

// ParseTrace reads a trace written by SaveTrace.
func ParseTrace(r io.Reader) ([]Op, error) { return trace.Parse(r) }

// Workload toolkit: generic shapes beyond the SPEC stand-ins, for
// custom experiments. All return ordinary Profiles.

// UniformProfile is uniformly random line access over footprintPages
// 4 KiB pages.
func UniformProfile(name string, footprintPages int, storeFraction float64) Profile {
	return trace.UniformProfile(name, footprintPages, storeFraction)
}

// StreamProfile is a pure unit-stride sweep (copy/init kernels).
func StreamProfile(name string, footprintPages int, storeFraction float64) Profile {
	return trace.StreamProfile(name, footprintPages, storeFraction)
}

// PointerChaseProfile is a dependent random walk (linked lists, trees).
func PointerChaseProfile(name string, footprintPages int) Profile {
	return trace.PointerChaseProfile(name, footprintPages)
}
